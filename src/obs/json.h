/**
 * @file
 * Minimal JSON support for the observability layer: a streaming
 * writer (stats dumps, run manifests, trace-event files) and a
 * recursive-descent parser (the stats-diff tool and round-trip
 * tests).
 *
 * Deliberately self-contained — tps::obs sits below tps::util in the
 * library stack so even the thread pool can emit trace events, which
 * means nothing here may depend on logging/formatting helpers.
 */

#ifndef TPS_OBS_JSON_H_
#define TPS_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace tps::obs
{

/**
 * Streaming JSON writer with automatic comma/indent management.
 *
 * Usage follows the document structure: beginObject()/key()/value
 * pairs, endObject(); arrays likewise.  Misuse (a key outside an
 * object, unbalanced end calls) throws std::logic_error — writer
 * bugs should fail loudly in tests, not emit invalid files.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = true);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by exactly one value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(bool v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<std::uint64_t>(v));
    }

    /**
     * Doubles are written with enough digits to round-trip exactly
     * (%.17g); non-finite values, which JSON cannot represent as
     * numbers, are written as the strings "inf"/"-inf"/"nan".
     */
    JsonWriter &value(double v);

    /** Call after the root value; verifies the document is closed. */
    void finish();

    /** Escape @p s into a quoted JSON string literal. */
    static std::string quote(const std::string &s);

  private:
    enum class Scope
    {
        Object,
        Array,
    };

    void beforeValue();
    void newline();

    std::ostream &os_;
    bool pretty_;
    bool have_key_ = false;  ///< a key was emitted, value pending
    bool need_comma_ = false;
    std::vector<Scope> stack_;
};

/** Parsed JSON value (tagged union, object keys sorted). */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Int,    ///< integral literal that fits std::int64_t
        Double, ///< any other numeric literal
        String,
        Object,
        Array,
    };

    Type type = Type::Null;
    bool boolean = false;
    std::int64_t integer = 0;
    double number = 0.0; ///< also set for Type::Int
    std::string text;
    std::map<std::string, JsonValue> object;
    std::vector<JsonValue> array;

    bool isNumber() const { return type == Type::Int || type == Type::Double; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &name) const;
};

/** Thrown by parseJson on malformed input, with a byte offset. */
class JsonParseError : public std::runtime_error
{
  public:
    JsonParseError(const std::string &what, std::size_t offset);

    std::size_t offset() const { return offset_; }

  private:
    std::size_t offset_;
};

/** Parse one JSON document (trailing garbage is an error). */
JsonValue parseJson(const std::string &text);

} // namespace tps::obs

#endif // TPS_OBS_JSON_H_
