/**
 * @file
 * Phase/span profiler emitting Chrome trace_event JSON, loadable in
 * chrome://tracing or https://ui.perfetto.dev.  One span per sweep
 * cell, thread-pool task and replay chunk makes parallel-sweep load
 * imbalance directly visible on a timeline.
 *
 * Spans are recorded as B/E duration-event pairs with a per-thread
 * microsecond timestamp; nesting is per thread (Chrome's model), so
 * begin()/end() must balance on each thread — use ScopedSpan.
 *
 * The profiler is normally reached through the process-global
 * instance: benches enable it with `--trace-out=FILE` (see
 * bench_common.h), instrumented code emits null-safe ScopedSpans,
 * and the file is written at exit.  When the global profiler is
 * disabled (the default) a ScopedSpan is a single pointer load.
 */

#ifndef TPS_OBS_TRACE_PROFILER_H_
#define TPS_OBS_TRACE_PROFILER_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace tps::obs
{

class TraceProfiler
{
  public:
    TraceProfiler();

    /** Open a span on the calling thread.  @p cat must be a literal
     *  (or otherwise outlive the profiler). */
    void begin(std::string name, const char *cat);

    /** Close the innermost span opened by this thread. */
    void end();

    /** Record an instant event (a point on the timeline). */
    void instant(std::string name, const char *cat);

    /** Number of recorded events (B and E count separately). */
    std::size_t eventCount() const;

    /** Drop all recorded events (tests). */
    void clear();

    /**
     * Emit the Chrome trace: {"traceEvents": [...]}.  Events carry
     * pid/tid/ts/ph/name/cat; tids are small dense integers in
     * first-emission order.
     */
    void writeJson(std::ostream &os) const;

    // ------------------------------------------------- global access

    /** The process-global profiler, nullptr until enabled. */
    static TraceProfiler *global();

    /** Idempotently create the global profiler. */
    static TraceProfiler *enableGlobal();

    /** Detach the global profiler again (tests). */
    static void disableGlobal();

  private:
    struct Event
    {
        std::string name;
        const char *cat;
        char ph; ///< 'B', 'E' or 'i'
        std::uint64_t tsUs;
        std::uint32_t tid;
    };

    void record(Event event);
    std::uint64_t nowUs() const;
    std::uint32_t threadId();

    mutable std::mutex mutex_;
    std::vector<Event> events_;
    std::uint32_t next_tid_ = 0;
    std::chrono::steady_clock::time_point start_;
};

/**
 * RAII span on the global profiler; a no-op when tracing is off.
 * The explicit-profiler constructor is for tests.
 */
class ScopedSpan
{
  public:
    ScopedSpan(std::string name, const char *cat)
        : ScopedSpan(TraceProfiler::global(), std::move(name), cat)
    {
    }

    ScopedSpan(TraceProfiler *profiler, std::string name, const char *cat)
        : profiler_(profiler)
    {
        if (profiler_ != nullptr)
            profiler_->begin(std::move(name), cat);
    }

    ~ScopedSpan()
    {
        if (profiler_ != nullptr)
            profiler_->end();
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    TraceProfiler *profiler_;
};

} // namespace tps::obs

#endif // TPS_OBS_TRACE_PROFILER_H_
