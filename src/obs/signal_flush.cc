#include "obs/signal_flush.h"

#include <csignal>
#include <cstdlib>

#include <atomic>
#include <mutex>
#include <vector>

namespace tps::obs
{

namespace
{

std::mutex &
callbackMutex()
{
    static std::mutex m;
    return m;
}

std::vector<std::function<void(int)>> &
callbacks()
{
    static std::vector<std::function<void(int)>> v;
    return v;
}

std::atomic<bool> g_ran{false};

extern "C" void
signalFlushHandler(int signo)
{
    runSignalFlushCallbacks(signo);
    std::_Exit(128 + signo);
}

void
installHandlersOnce()
{
    static bool installed = false; // guarded by callbackMutex()
    if (installed)
        return;
    installed = true;
    struct sigaction sa = {};
    sa.sa_handler = &signalFlushHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

} // namespace

void
installSignalFlush(std::function<void(int)> fn)
{
    std::lock_guard<std::mutex> lock(callbackMutex());
    installHandlersOnce();
    callbacks().push_back(std::move(fn));
}

int
runSignalFlushCallbacks(int signo)
{
    if (g_ran.exchange(true))
        return 0;
    // No lock: if the signal interrupted a thread holding
    // callbackMutex() we must not deadlock; registration happens at
    // startup, long before any interesting signal.
    int ran = 0;
    for (auto &fn : callbacks()) {
        fn(signo);
        ++ran;
    }
    return ran;
}

} // namespace tps::obs
