#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tps::obs
{

// ------------------------------------------------------------ writer

JsonWriter::JsonWriter(std::ostream &os, bool pretty)
    : os_(os), pretty_(pretty)
{
}

std::string
JsonWriter::quote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

void
JsonWriter::newline()
{
    if (!pretty_)
        return;
    os_.put('\n');
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::beforeValue()
{
    if (have_key_) {
        // key() already positioned us; the value follows the colon.
        have_key_ = false;
        return;
    }
    if (!stack_.empty() && stack_.back() == Scope::Object)
        throw std::logic_error("JsonWriter: value in object needs key()");
    if (need_comma_)
        os_.put(',');
    if (!stack_.empty())
        newline();
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    if (stack_.empty() || stack_.back() != Scope::Object)
        throw std::logic_error("JsonWriter: key() outside object");
    if (have_key_)
        throw std::logic_error("JsonWriter: key() after key()");
    if (need_comma_)
        os_.put(',');
    newline();
    os_ << quote(name) << (pretty_ ? ": " : ":");
    have_key_ = true;
    need_comma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    os_.put('{');
    stack_.push_back(Scope::Object);
    need_comma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Scope::Object || have_key_)
        throw std::logic_error("JsonWriter: unbalanced endObject()");
    const bool empty = !need_comma_;
    stack_.pop_back();
    if (!empty)
        newline();
    os_.put('}');
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    os_.put('[');
    stack_.push_back(Scope::Array);
    need_comma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Scope::Array)
        throw std::logic_error("JsonWriter: unbalanced endArray()");
    const bool empty = !need_comma_;
    stack_.pop_back();
    if (!empty)
        newline();
    os_.put(']');
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeValue();
    os_ << quote(v);
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    os_ << (v ? "true" : "false");
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    os_ << v;
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    os_ << v;
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v))
        return value(v != v ? "nan" : (v > 0 ? "inf" : "-inf"));
    beforeValue();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
    need_comma_ = true;
    return *this;
}

void
JsonWriter::finish()
{
    if (!stack_.empty() || have_key_)
        throw std::logic_error("JsonWriter: finish() with open scopes");
    if (pretty_)
        os_.put('\n');
    os_.flush();
}

// ------------------------------------------------------------ parser

JsonParseError::JsonParseError(const std::string &what, std::size_t offset)
    : std::runtime_error(what + " (at byte " + std::to_string(offset) + ")"),
      offset_(offset)
{
}

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (type != Type::Object)
        return nullptr;
    const auto it = object.find(name);
    return it == object.end() ? nullptr : &it->second;
}

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw JsonParseError(what, pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        const std::size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        JsonValue v;
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            v.type = JsonValue::Type::String;
            v.text = parseString();
            return v;
          case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            return v;
          case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            v.type = JsonValue::Type::Bool;
            v.boolean = false;
            return v;
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            v.type = JsonValue::Type::Null;
            return v;
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipWs();
            std::string name = parseString();
            skipWs();
            expect(':');
            v.object[std::move(name)] = parseValue();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out.push_back(e);
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // Encode as UTF-8 (surrogate pairs unsupported; the
                // writer never emits them).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected value");
        const std::string token = text_.substr(start, pos_ - start);
        JsonValue v;
        char *end = nullptr;
        if (token.find_first_of(".eE") == std::string::npos) {
            errno = 0;
            const long long i = std::strtoll(token.c_str(), &end, 10);
            if (end == token.c_str() + token.size() && errno == 0) {
                v.type = JsonValue::Type::Int;
                v.integer = i;
                v.number = static_cast<double>(i);
                return v;
            }
        }
        end = nullptr;
        const double d = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            fail("malformed number");
        v.type = JsonValue::Type::Double;
        v.number = d;
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace tps::obs
