/**
 * @file
 * HTML rendering of tps-stats-v1 / tps-timeseries-v1 documents: the
 * self-contained report (inline-SVG charts, no external assets) that
 * `tps_report` writes to disk and `tpsd` serves from its /report
 * endpoint.  Living in obs keeps the two consumers byte-identical —
 * the daemon renders the same page the CLI would have written for the
 * same documents.
 *
 * All entry points append fragments to a caller-owned stream;
 * writePageHead/writePageFoot bracket them into a full document.
 */

#ifndef TPS_OBS_REPORT_HTML_H_
#define TPS_OBS_REPORT_HTML_H_

#include <ostream>
#include <string>

#include "obs/json.h"

namespace tps::obs::report
{

/** Escape &, <, >, " for element and attribute context. */
std::string htmlEscape(const std::string &s);

/** Integers exactly, everything else %.6g. */
std::string formatNumber(double v);

/** `<!doctype html>` through `<h1>` (title is escaped). */
void writePageHead(std::ostream &os, const std::string &title);

/** Close body/html. */
void writePageFoot(std::ostream &os);

/** Provenance header table from a stats document's "manifest". */
void writeManifest(std::ostream &os, const JsonValue *manifest);

/**
 * One cell of a tps-timeseries-v1 document: collapsible section with
 * the per-interval charts (miss rate, promotion/demotion/shootdown
 * events, working set, reach, fragmentation, OS events — each only
 * when its columns exist), the whole-run totals and the sampled miss
 * events.  @p key labels the cell when it carries no workload name.
 */
void writeTimeSeriesCell(std::ostream &os, const std::string &key,
                         const JsonValue &cell);

/** The stats/text tables of a tps-stats-v1 document. */
void writeStatsSections(std::ostream &os, const JsonValue &doc);

} // namespace tps::obs::report

#endif // TPS_OBS_REPORT_HTML_H_
