/**
 * @file
 * Hierarchical statistics registry: every counter, derived value and
 * histogram a run produces, addressed by a dotted name such as
 * "tlb.l1.miss" or "policy.promotions", dumpable to JSON/CSV with a
 * run manifest attached (gem5's stats dump is the model).
 *
 * Threading model: each simulation cell fills its own registry (or a
 * disjoint name subtree) and parents aggregate with merge(); all
 * mutating and reading operations are internally locked, so a shared
 * registry may also be written from worker threads directly as long
 * as names are distinct.  Output is sorted by name, making dumps
 * deterministic regardless of registration order or thread count.
 */

#ifndef TPS_OBS_STAT_REGISTRY_H_
#define TPS_OBS_STAT_REGISTRY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/manifest.h"

namespace tps::obs
{

/**
 * Valid stat names are non-empty dot-separated paths whose segments
 * use [A-Za-z0-9_-] only (no empty segments).
 */
bool isValidStatName(const std::string &name);

/**
 * Turn an arbitrary label ("64-entry FA / 4KB/32KB") into one valid
 * name segment: lower-cased, runs of non-alphanumerics collapsed to a
 * single '_', "_" when nothing survives.
 */
std::string slugify(const std::string &label);

/** One registered statistic. */
struct StatEntry
{
    enum class Kind
    {
        Counter,   ///< exact 64-bit event count
        Value,     ///< derived floating-point metric
        Text,      ///< provenance strings (workload/tlb names...)
        Histogram, ///< bucket weights, semantics owned by the producer
    };

    Kind kind = Kind::Counter;
    std::uint64_t counter = 0;
    double value = 0.0;
    std::string text;
    std::vector<std::uint64_t> buckets;
};

class StatRegistry
{
  public:
    StatRegistry() = default;

    /** Registries are value types so cells can return them. */
    StatRegistry(const StatRegistry &other);
    StatRegistry &operator=(const StatRegistry &other);

    /**
     * Register one statistic.  Throws std::invalid_argument when the
     * name is malformed or already registered — colliding names mean
     * two components believe they own the same stat, which would
     * silently corrupt dumps.
     */
    void addCounter(const std::string &name, std::uint64_t value);
    void addValue(const std::string &name, double value);
    void addText(const std::string &name, const std::string &value);
    void addHistogram(const std::string &name,
                      std::vector<std::uint64_t> buckets);

    /** Add to an existing counter, registering it on first use. */
    void incrCounter(const std::string &name, std::uint64_t delta);

    bool has(const std::string &name) const;
    std::size_t size() const;

    /** Typed lookups; throw std::out_of_range on missing/wrong kind. */
    std::uint64_t counter(const std::string &name) const;
    double value(const std::string &name) const;
    const std::string &text(const std::string &name) const;

    /** Sorted snapshot of all names (tests, table drivers). */
    std::vector<std::string> names() const;

    /**
     * Fold @p other into this registry, prefixing every name with
     * "@p prefix." when a prefix is given.  Thread-safe on the
     * destination; collisions throw as in add*().
     */
    void merge(const StatRegistry &other, const std::string &prefix = "");

    /**
     * Dump as a tps-stats-v1 JSON document:
     * {
     *   "schema": "tps-stats-v1",
     *   "manifest": {...},          // when provided
     *   "stats": {name: number},    // counters + values, sorted
     *   "text": {name: string},
     *   "histograms": {name: [..]}
     * }
     * Counters are emitted as exact integers; values with enough
     * digits to round-trip bit-identically.
     */
    void writeJson(std::ostream &os,
                   const RunManifest *manifest = nullptr) const;

    /** Flat CSV dump: name,kind,value (histograms space-separated). */
    void writeCsv(std::ostream &os) const;

  private:
    void addEntry(const std::string &name, StatEntry entry);

    mutable std::mutex mutex_;
    std::map<std::string, StatEntry> entries_;
};

} // namespace tps::obs

#endif // TPS_OBS_STAT_REGISTRY_H_
