#include "stacksim/all_assoc.h"

#include <algorithm>

#include "util/bitops.h"
#include "util/logging.h"

namespace tps
{

AllAssocSim::AllAssocSim(unsigned max_set_bits, std::size_t max_ways)
    : max_set_bits_(max_set_bits), max_ways_(max_ways)
{
    if (max_ways == 0)
        tps_fatal("AllAssocSim needs max_ways > 0");
    if (max_set_bits > 20)
        tps_fatal("AllAssocSim set bits capped at 20, got ", max_set_bits);
    levels_.resize(max_set_bits_ + 1);
    for (unsigned s = 0; s <= max_set_bits_; ++s)
        levels_[s].resize(std::size_t{1} << s);
    histograms_.assign(max_set_bits_ + 1, stats::Histogram(max_ways_));
}

void
AllAssocSim::observe(std::uint64_t tag, std::uint64_t index)
{
    ++refs_;
    for (unsigned s = 0; s <= max_set_bits_; ++s) {
        SetStack &set = levels_[s][index & mask(s)];
        auto &keys = set.keys;
        const auto it = std::find(keys.begin(), keys.end(), tag);
        if (it == keys.end()) {
            histograms_[s].add(max_ways_); // overflow: miss at all ways
            keys.insert(keys.begin(), tag);
            if (keys.size() > max_ways_)
                keys.pop_back();
        } else {
            const std::size_t depth =
                static_cast<std::size_t>(it - keys.begin());
            histograms_[s].add(depth);
            keys.erase(it);
            keys.insert(keys.begin(), tag);
        }
    }
}

std::uint64_t
AllAssocSim::misses(unsigned set_bits, std::size_t ways) const
{
    if (set_bits > max_set_bits_)
        tps_fatal("set_bits ", set_bits, " beyond tracked ",
                  max_set_bits_);
    if (ways == 0 || ways > max_ways_)
        tps_fatal("ways ", ways, " outside tracked range [1,", max_ways_,
                  "]");
    return histograms_[set_bits].tailAtLeast(ways);
}

std::uint64_t
AllAssocSim::missesForCapacity(std::size_t entries, std::size_t ways) const
{
    if (ways == 0 || entries % ways != 0 || !isPow2(entries / ways))
        tps_fatal("capacity ", entries, " not a power-of-two set count "
                  "at ", ways, " ways");
    return misses(log2Exact(entries / ways), ways);
}

void
AllAssocSim::reset()
{
    for (auto &level : levels_)
        for (auto &set : level)
            set.keys.clear();
    for (auto &histogram : histograms_)
        histogram.reset();
    refs_ = 0;
}

} // namespace tps
