/**
 * @file
 * All-associativity simulation [HiS89]: per-set stack refinement that
 * evaluates every (number of sets, associativity) pair in one pass.
 *
 * For a fixed set count 2^s, LRU within each set is a stack algorithm,
 * so a per-set stack-distance histogram gives miss counts for every
 * associativity at that set count.  Running all set counts
 * 2^0 .. 2^max_set_bits side by side reproduces the paper's "84 TLB
 * configurations in one simulation at about double the cost of one"
 * (Section 3.3).
 *
 * The full experiment driver generalizes the same share-one-pass idea
 * beyond LRU stacks: core::runSharedPass classifies a trace once and
 * probes every TLB geometry in a policy-equal group against it
 * (DESIGN.md §11), trading this module's exactness-per-organization
 * restriction for arbitrary replacement/organization mixes.
 */

#ifndef TPS_STACKSIM_ALL_ASSOC_H_
#define TPS_STACKSIM_ALL_ASSOC_H_

#include <cstdint>
#include <vector>

#include "stats/histogram.h"

namespace tps
{

/** One-pass evaluator for a grid of set-associative organizations. */
class AllAssocSim
{
  public:
    /**
     * @param max_set_bits evaluate set counts 2^0 .. 2^max_set_bits
     * @param max_ways     largest associativity of interest
     */
    AllAssocSim(unsigned max_set_bits, std::size_t max_ways);

    /**
     * Account one reference.
     *
     * @param tag   the page number (what the TLB entry stores)
     * @param index value whose low bits select the set.  For normal
     *              indexing pass the tag itself; for the paper's
     *              large-page-index scheme on small pages pass
     *              tag >> (largeLog2 - smallLog2).
     */
    void observe(std::uint64_t tag, std::uint64_t index);

    /** Convenience: index with the tag's own low bits. */
    void observe(std::uint64_t tag) { observe(tag, tag); }

    /**
     * Misses of the organization with 2^set_bits sets x ways.
     * @pre set_bits <= max_set_bits, 0 < ways <= max_ways
     */
    std::uint64_t misses(unsigned set_bits, std::size_t ways) const;

    /** Misses for total capacity @p entries at associativity @p ways. */
    std::uint64_t
    missesForCapacity(std::size_t entries, std::size_t ways) const;

    std::uint64_t refs() const { return refs_; }
    unsigned maxSetBits() const { return max_set_bits_; }
    std::size_t maxWays() const { return max_ways_; }

    void reset();

  private:
    /** Bounded per-set move-to-front stack. */
    struct SetStack
    {
        std::vector<std::uint64_t> keys; // most recent first
    };

    unsigned max_set_bits_;
    std::size_t max_ways_;
    /** level s -> 2^s stacks. */
    std::vector<std::vector<SetStack>> levels_;
    /** level s -> distance histogram aggregated over its sets. */
    std::vector<stats::Histogram> histograms_;
    std::uint64_t refs_ = 0;
};

} // namespace tps

#endif // TPS_STACKSIM_ALL_ASSOC_H_
