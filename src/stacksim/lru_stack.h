/**
 * @file
 * Mattson LRU stack simulation [MGS70]: one pass over a trace yields
 * miss counts for fully associative LRU buffers of *every* size.
 *
 * This is the core of the paper's "tycho" methodology (Section 3.3):
 * LRU is a stack algorithm, so the contents of an n-entry buffer are
 * always a subset of an (n+1)-entry buffer, and a reference hits in
 * every buffer at least as large as its stack distance.
 */

#ifndef TPS_STACKSIM_LRU_STACK_H_
#define TPS_STACKSIM_LRU_STACK_H_

#include <cstdint>
#include <vector>

#include "stats/histogram.h"

namespace tps
{

/**
 * Bounded move-to-front LRU stack with a stack-distance histogram.
 *
 * Distances are 0-based: distance d means the key was the (d+1)-th
 * most recently used, so a buffer with capacity > d hits.  Distances
 * beyond the bound (and cold first references) count as "overflow" —
 * misses in every tracked size.
 */
class LruStackSim
{
  public:
    /** @param max_depth largest buffer size of interest. */
    explicit LruStackSim(std::size_t max_depth);

    /** Account one reference to @p key. */
    void observe(std::uint64_t key);

    /**
     * Misses of a fully associative LRU buffer with @p entries slots.
     * @pre entries <= max_depth (distances beyond were not tracked)
     */
    std::uint64_t missesForSize(std::size_t entries) const;

    std::uint64_t refs() const { return refs_; }

    /**
     * References found nowhere in the tracked stack: true cold misses
     * plus re-references whose distance exceeded max_depth (the stack
     * is bounded, so the two are indistinguishable; both miss in every
     * tracked size).
     */
    std::uint64_t coldMisses() const { return cold_; }
    const stats::Histogram &distances() const { return histogram_; }

    void reset();

  private:
    std::size_t max_depth_;
    std::vector<std::uint64_t> stack_; ///< most recent first
    stats::Histogram histogram_;
    std::uint64_t cold_ = 0;
    std::uint64_t refs_ = 0;
};

} // namespace tps

#endif // TPS_STACKSIM_LRU_STACK_H_
