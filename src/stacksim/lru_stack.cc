#include "stacksim/lru_stack.h"

#include <algorithm>

#include "util/logging.h"

namespace tps
{

LruStackSim::LruStackSim(std::size_t max_depth)
    : max_depth_(max_depth), histogram_(max_depth)
{
    if (max_depth == 0)
        tps_fatal("LruStackSim needs max_depth > 0");
    stack_.reserve(max_depth + 1);
}

void
LruStackSim::observe(std::uint64_t key)
{
    ++refs_;
    const auto it = std::find(stack_.begin(), stack_.end(), key);
    if (it == stack_.end()) {
        // Cold (or beyond tracked depth): misses at every size.
        ++cold_;
        histogram_.add(max_depth_); // lands in the overflow bucket
        stack_.insert(stack_.begin(), key);
        if (stack_.size() > max_depth_)
            stack_.pop_back();
        return;
    }
    const std::size_t depth =
        static_cast<std::size_t>(it - stack_.begin());
    histogram_.add(depth);
    stack_.erase(it);
    stack_.insert(stack_.begin(), key);
}

std::uint64_t
LruStackSim::missesForSize(std::size_t entries) const
{
    if (entries > max_depth_)
        tps_fatal("missesForSize(", entries, ") beyond tracked depth ",
                  max_depth_);
    return histogram_.tailAtLeast(entries);
}

void
LruStackSim::reset()
{
    stack_.clear();
    histogram_.reset();
    cold_ = 0;
    refs_ = 0;
}

} // namespace tps
