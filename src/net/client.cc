/**
 * @file
 * Blocking tps-wire-v1 client (see client.h).
 */

#include "net/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "obs/json.h"

namespace tps::net
{

namespace
{

/** Refs per TraceChunk frame: ~640 KB payloads, far under the frame
 *  cap, so upload memory stays bounded on both ends. */
constexpr std::size_t kTraceChunkRefs = 65536;

std::uint64_t
jsonUint(const obs::JsonValue &doc, const char *name)
{
    const obs::JsonValue *v = doc.find(name);
    if (v == nullptr || !v->isNumber() || v->number < 0)
        return 0;
    return static_cast<std::uint64_t>(v->integer);
}

std::string
jsonString(const obs::JsonValue &doc, const char *name)
{
    const obs::JsonValue *v = doc.find(name);
    return v == nullptr ? std::string() : v->text;
}

/** Connect a blocking TCP socket; -1 with @p error set on failure. */
int
tcpConnect(const std::string &host, std::uint16_t port,
           std::string &error)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const std::string service = std::to_string(port);
    const int rc =
        ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
    if (rc != 0) {
        error = host + ": " + ::gai_strerror(rc);
        return -1;
    }
    int fd = -1;
    for (addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        error = "connect " + host + ":" + service + ": " +
                std::strerror(errno);
    return fd;
}

} // namespace

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    parser_ = FrameParser();
}

bool
Client::connect(const std::string &host, std::uint16_t port,
                std::string &error)
{
    close();
    fd_ = tcpConnect(host, port, error);
    if (fd_ < 0)
        return false;

    std::string out;
    appendFrame(out, FrameType::Hello, encodeVersion(kWireVersion));
    if (!sendAll(out, error))
        return false;
    Frame frame;
    if (!readFrame(frame, error))
        return false;
    if (frame.type != FrameType::HelloOk) {
        error = "handshake refused";
        close();
        return false;
    }
    PayloadReader r(frame.payload);
    std::uint32_t version = 0;
    if (!r.u32(version) || version != kWireVersion) {
        error = "server speaks wire version " + std::to_string(version);
        close();
        return false;
    }
    return true;
}

bool
Client::sendAll(const std::string &bytes, std::string &error)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::send(fd_, bytes.data() + off,
                                 bytes.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        error = std::string("send: ") + std::strerror(errno);
        close();
        return false;
    }
    return true;
}

bool
Client::readFrame(Frame &out, std::string &error)
{
    char buf[65536];
    for (;;) {
        const FrameParser::Result r = parser_.next(out);
        if (r == FrameParser::Result::Ready)
            return true;
        if (r == FrameParser::Result::Malformed) {
            error = "malformed frame from server";
            close();
            return false;
        }
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            parser_.feed(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        error = n == 0 ? "server closed connection"
                       : std::string("recv: ") + std::strerror(errno);
        close();
        return false;
    }
}

bool
Client::submit(const SessionSpec &spec, SubmitReply &out,
               std::string &error)
{
    out = SubmitReply();
    std::string wire;
    appendFrame(wire, FrameType::Submit, spec.toJson());
    if (!sendAll(wire, error))
        return false;
    Frame frame;
    if (!readFrame(frame, error))
        return false;
    try {
        const obs::JsonValue doc = obs::parseJson(frame.payload);
        switch (frame.type) {
        case FrameType::Accepted:
            out.accepted = true;
            out.sessionId = jsonUint(doc, "session_id");
            return true;
        case FrameType::Rejected:
            out.reason = jsonString(doc, "reason");
            out.retryAfterMs = jsonUint(doc, "retry_after_ms");
            return true;
        case FrameType::Error:
            error = jsonString(doc, "error");
            return false;
        default:
            break;
        }
    } catch (const std::exception &e) {
        error = e.what();
        return false;
    }
    error = "unexpected reply to Submit";
    return false;
}

bool
Client::sendTrace(std::uint64_t session,
                  const std::vector<MemRef> &refs, std::string &error)
{
    std::size_t off = 0;
    do {
        const std::size_t n =
            std::min(kTraceChunkRefs, refs.size() - off);
        std::string wire;
        appendFrame(wire, FrameType::TraceChunk,
                    encodeTraceChunk(session, refs.data() + off, n));
        if (!sendAll(wire, error))
            return false;
        off += n;
    } while (off < refs.size());

    std::string wire;
    appendFrame(wire, FrameType::TraceDone, encodeSessionId(session));
    if (!sendAll(wire, error))
        return false;
    PollReply reply;
    if (!readStatusReply(reply, error))
        return false;
    if (reply.state == "failed") {
        error = reply.sessionError.empty() ? "session failed"
                                           : reply.sessionError;
        return false;
    }
    return true;
}

/** Read frames up to (and including) the Status reply, collecting
 *  Telemetry on the way and the Result frame when Status announces
 *  one. */
bool
Client::readStatusReply(PollReply &out, std::string &error)
{
    for (;;) {
        Frame frame;
        if (!readFrame(frame, error))
            return false;
        if (frame.type == FrameType::Telemetry) {
            out.telemetry.push_back(std::move(frame.payload));
            continue;
        }
        if (frame.type == FrameType::Error) {
            try {
                error = jsonString(obs::parseJson(frame.payload),
                                   "error");
            } catch (const std::exception &) {
                error = "server error";
            }
            return false;
        }
        if (frame.type != FrameType::Status) {
            error = "unexpected frame awaiting Status";
            return false;
        }
        bool has_result = false;
        try {
            const obs::JsonValue doc = obs::parseJson(frame.payload);
            out.state = jsonString(doc, "state");
            out.replayedRefs = jsonUint(doc, "replayed_refs");
            out.measuredRefs = jsonUint(doc, "measured_refs");
            out.chunks = jsonUint(doc, "chunks");
            out.sessionError = jsonString(doc, "error");
            if (const obs::JsonValue *v = doc.find("has_result"))
                has_result = v->boolean;
        } catch (const std::exception &e) {
            error = e.what();
            return false;
        }
        if (has_result && out.resultStats.empty()) {
            if (!readFrame(frame, error))
                return false;
            if (frame.type != FrameType::Result) {
                error = "expected Result after Status";
                return false;
            }
            out.resultStats = std::move(frame.payload);
        }
        return true;
    }
}

bool
Client::poll(std::uint64_t session, PollReply &out, std::string &error)
{
    out = PollReply();
    std::string wire;
    appendFrame(wire, FrameType::Poll, encodeSessionId(session));
    if (!sendAll(wire, error))
        return false;
    return readStatusReply(out, error);
}

bool
Client::cancel(std::uint64_t session, PollReply &out,
               std::string &error)
{
    out = PollReply();
    std::string wire;
    appendFrame(wire, FrameType::Cancel, encodeSessionId(session));
    if (!sendAll(wire, error))
        return false;
    return readStatusReply(out, error);
}

bool
httpGet(const std::string &host, std::uint16_t port,
        const std::string &path, std::string &body, std::string &error)
{
    error.clear();
    const int fd = tcpConnect(host, port, error);
    if (fd < 0)
        return false;
    const std::string request = "GET " + path +
                                " HTTP/1.1\r\nHost: " + host +
                                "\r\nConnection: close\r\n\r\n";
    std::size_t off = 0;
    while (off < request.size()) {
        const ssize_t n = ::send(fd, request.data() + off,
                                 request.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        error = std::string("send: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }
    std::string response;
    char buf[65536];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n > 0) {
            response.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0)
            error = std::string("recv: ") + std::strerror(errno);
        break;
    }
    ::close(fd);
    if (!error.empty())
        return false;
    const std::size_t header_end = response.find("\r\n\r\n");
    if (header_end == std::string::npos) {
        error = "truncated HTTP response";
        return false;
    }
    if (response.compare(0, 12, "HTTP/1.1 200") != 0) {
        error = "HTTP " + response.substr(9, 3);
        return false;
    }
    body = response.substr(header_end + 4);
    return true;
}

} // namespace tps::net
