/**
 * @file
 * tps-session-spec-v1 (de)serialization and validation (see spec.h).
 */

#include "net/spec.h"

#include <sstream>

#include "obs/json.h"
#include "obs/stat_registry.h"
#include "obs/timeseries.h"
#include "workloads/registry.h"

namespace tps::net
{

namespace
{

using obs::JsonValue;
using obs::JsonWriter;

// --- enum spellings (wire names are part of the schema) -------------

const char *
organizationName(TlbOrganization org)
{
    switch (org) {
      case TlbOrganization::FullyAssociative:
        return "fa";
      case TlbOrganization::SetAssociative:
        return "set_assoc";
      case TlbOrganization::Split:
        return "split";
      case TlbOrganization::TwoLevel:
        return "two_level";
    }
    return "?";
}

bool
parseOrganization(const std::string &name, TlbOrganization &out)
{
    if (name == "fa")
        out = TlbOrganization::FullyAssociative;
    else if (name == "set_assoc")
        out = TlbOrganization::SetAssociative;
    else if (name == "split")
        out = TlbOrganization::Split;
    else if (name == "two_level")
        out = TlbOrganization::TwoLevel;
    else
        return false;
    return true;
}

const char *
schemeName(IndexScheme scheme)
{
    switch (scheme) {
      case IndexScheme::SmallPage:
        return "small";
      case IndexScheme::LargePage:
        return "large";
      case IndexScheme::Exact:
        return "exact";
    }
    return "?";
}

bool
parseScheme(const std::string &name, IndexScheme &out)
{
    if (name == "small")
        out = IndexScheme::SmallPage;
    else if (name == "large")
        out = IndexScheme::LargePage;
    else if (name == "exact")
        out = IndexScheme::Exact;
    else
        return false;
    return true;
}

const char *
probeName(ProbeStrategy probe)
{
    return probe == ProbeStrategy::Sequential ? "sequential"
                                              : "parallel";
}

bool
parseProbe(const std::string &name, ProbeStrategy &out)
{
    if (name == "parallel")
        out = ProbeStrategy::Parallel;
    else if (name == "sequential")
        out = ProbeStrategy::Sequential;
    else
        return false;
    return true;
}

const char *
replacementName(ReplPolicy policy)
{
    switch (policy) {
      case ReplPolicy::LRU:
        return "lru";
      case ReplPolicy::FIFO:
        return "fifo";
      case ReplPolicy::Random:
        return "random";
      case ReplPolicy::TreePLRU:
        return "tree_plru";
    }
    return "?";
}

bool
parseReplacement(const std::string &name, ReplPolicy &out)
{
    if (name == "lru")
        out = ReplPolicy::LRU;
    else if (name == "fifo")
        out = ReplPolicy::FIFO;
    else if (name == "random")
        out = ReplPolicy::Random;
    else if (name == "tree_plru")
        out = ReplPolicy::TreePLRU;
    else
        return false;
    return true;
}

// --- tolerant field readers ----------------------------------------

std::string
getString(const JsonValue &obj, const char *key,
          const std::string &fallback = "")
{
    const JsonValue *v = obj.find(key);
    return v != nullptr && v->type == JsonValue::Type::String
               ? v->text
               : fallback;
}

std::uint64_t
getUint(const JsonValue &obj, const char *key, std::uint64_t fallback)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr || !v->isNumber())
        return fallback;
    if (v->type == JsonValue::Type::Int)
        return v->integer < 0 ? fallback
                              : static_cast<std::uint64_t>(v->integer);
    return v->number < 0 ? fallback
                         : static_cast<std::uint64_t>(v->number);
}

bool
getBool(const JsonValue &obj, const char *key, bool fallback)
{
    const JsonValue *v = obj.find(key);
    return v != nullptr && v->type == JsonValue::Type::Bool
               ? v->boolean
               : fallback;
}

} // namespace

std::string
SessionSpec::toJson() const
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.key("schema").value(kSessionSpecSchema);
    if (streamTrace)
        w.key("stream_trace").value(true);
    else
        w.key("workload").value(workload);
    w.key("max_refs").value(maxRefs);
    w.key("warmup_refs").value(warmupRefs);
    w.key("ws_window").value(wsWindow);
    w.key("chunk_refs").value(chunkRefs);
    w.key("lifecycle").value(lifecycle);
    w.key("ts_interval_refs").value(tsIntervalRefs);
    w.key("ts_miss_samples").value(tsMissSamples);
    w.key("ts_miss_seed").value(tsMissSeed);
    w.key("events_sample_every").value(eventsSampleEvery);
    w.key("events_capacity").value(eventsCapacity);

    w.key("tlb").beginObject();
    w.key("organization").value(organizationName(tlb.organization));
    w.key("entries").value(static_cast<std::uint64_t>(tlb.entries));
    w.key("ways").value(static_cast<std::uint64_t>(tlb.ways));
    w.key("scheme").value(schemeName(tlb.scheme));
    w.key("probe").value(probeName(tlb.probe));
    w.key("small_log2").value(tlb.smallLog2);
    w.key("large_log2").value(tlb.largeLog2);
    w.key("replacement").value(replacementName(tlb.replacement));
    w.key("rng_seed").value(tlb.rngSeed);
    w.key("split_large_entries")
        .value(static_cast<std::uint64_t>(tlb.splitLargeEntries));
    w.key("l1_entries")
        .value(static_cast<std::uint64_t>(tlb.l1Entries));
    w.endObject();

    w.key("policy").beginObject();
    if (policy.kind == core::PolicySpec::Kind::Single) {
        w.key("kind").value("single");
        w.key("size_log2").value(policy.singleLog2);
    } else {
        w.key("kind").value("two_size");
        w.key("small_log2").value(policy.twoSize.smallLog2);
        w.key("large_log2").value(policy.twoSize.largeLog2);
        w.key("window").value(policy.twoSize.window);
        w.key("promote_threshold").value(policy.twoSize.promoteThreshold);
        w.key("demote_threshold").value(policy.twoSize.demoteThreshold);
    }
    w.endObject();
    w.endObject();
    w.finish();
    return os.str();
}

bool
SessionSpec::fromJson(const std::string &text, SessionSpec &out,
                      std::string &error)
{
    JsonValue doc;
    try {
        doc = obs::parseJson(text);
    } catch (const obs::JsonParseError &e) {
        error = std::string("spec parse error: ") + e.what();
        return false;
    }
    if (doc.type != JsonValue::Type::Object) {
        error = "spec is not a JSON object";
        return false;
    }
    if (getString(doc, "schema") != kSessionSpecSchema) {
        error = "spec schema is not tps-session-spec-v1";
        return false;
    }

    SessionSpec spec;
    spec.workload = getString(doc, "workload");
    spec.streamTrace = getBool(doc, "stream_trace", false);
    spec.maxRefs = getUint(doc, "max_refs", spec.maxRefs);
    spec.warmupRefs = getUint(doc, "warmup_refs", spec.warmupRefs);
    spec.wsWindow = getUint(doc, "ws_window", spec.wsWindow);
    spec.chunkRefs = getUint(doc, "chunk_refs", spec.chunkRefs);
    spec.lifecycle = getBool(doc, "lifecycle", spec.lifecycle);
    spec.tsIntervalRefs =
        getUint(doc, "ts_interval_refs", spec.tsIntervalRefs);
    spec.tsMissSamples =
        getUint(doc, "ts_miss_samples", spec.tsMissSamples);
    spec.tsMissSeed = getUint(doc, "ts_miss_seed", spec.tsMissSeed);
    spec.eventsSampleEvery =
        getUint(doc, "events_sample_every", spec.eventsSampleEvery);
    spec.eventsCapacity =
        getUint(doc, "events_capacity", spec.eventsCapacity);

    if (const JsonValue *tlb = doc.find("tlb")) {
        if (tlb->type != JsonValue::Type::Object) {
            error = "\"tlb\" is not an object";
            return false;
        }
        TlbConfig &c = spec.tlb;
        if (!parseOrganization(
                getString(*tlb, "organization",
                          organizationName(c.organization)),
                c.organization)) {
            error = "unknown tlb.organization";
            return false;
        }
        c.entries = static_cast<std::size_t>(
            getUint(*tlb, "entries", c.entries));
        c.ways =
            static_cast<std::size_t>(getUint(*tlb, "ways", c.ways));
        if (!parseScheme(getString(*tlb, "scheme",
                                   schemeName(c.scheme)),
                         c.scheme)) {
            error = "unknown tlb.scheme";
            return false;
        }
        if (!parseProbe(getString(*tlb, "probe", probeName(c.probe)),
                        c.probe)) {
            error = "unknown tlb.probe";
            return false;
        }
        c.smallLog2 = static_cast<unsigned>(
            getUint(*tlb, "small_log2", c.smallLog2));
        c.largeLog2 = static_cast<unsigned>(
            getUint(*tlb, "large_log2", c.largeLog2));
        if (!parseReplacement(
                getString(*tlb, "replacement",
                          replacementName(c.replacement)),
                c.replacement)) {
            error = "unknown tlb.replacement";
            return false;
        }
        c.rngSeed = getUint(*tlb, "rng_seed", c.rngSeed);
        c.splitLargeEntries = static_cast<std::size_t>(getUint(
            *tlb, "split_large_entries", c.splitLargeEntries));
        c.l1Entries = static_cast<std::size_t>(
            getUint(*tlb, "l1_entries", c.l1Entries));
    }

    if (const JsonValue *policy = doc.find("policy")) {
        if (policy->type != JsonValue::Type::Object) {
            error = "\"policy\" is not an object";
            return false;
        }
        const std::string kind = getString(*policy, "kind", "single");
        if (kind == "single") {
            spec.policy = core::PolicySpec::single(
                static_cast<unsigned>(getUint(*policy, "size_log2",
                                              spec.tlb.smallLog2)));
        } else if (kind == "two_size") {
            TwoSizeConfig config;
            config.smallLog2 = static_cast<unsigned>(getUint(
                *policy, "small_log2", spec.tlb.smallLog2));
            config.largeLog2 = static_cast<unsigned>(getUint(
                *policy, "large_log2", spec.tlb.largeLog2));
            config.window =
                getUint(*policy, "window", config.window);
            config.promoteThreshold = static_cast<unsigned>(getUint(
                *policy, "promote_threshold", config.promoteThreshold));
            config.demoteThreshold = static_cast<unsigned>(getUint(
                *policy, "demote_threshold", config.demoteThreshold));
            spec.policy = core::PolicySpec::twoSizes(config);
        } else {
            error = "unknown policy.kind";
            return false;
        }
    }

    out = std::move(spec);
    return true;
}

bool
SessionSpec::validate(std::string &error) const
{
    if (streamTrace && !workload.empty()) {
        error = "spec names a workload AND streams a trace";
        return false;
    }
    if (!streamTrace) {
        if (workload.empty()) {
            error = "spec names no workload and streams no trace";
            return false;
        }
        bool known = false;
        for (const auto &info : workloads::suite())
            known = known || info.name == workload;
        if (!known) {
            error = "unknown workload \"" + workload + "\"";
            return false;
        }
        // Registry workloads are infinite generators: an unbounded
        // run would hold a worker forever.
        if (maxRefs == 0) {
            error = "max_refs must be positive for registry workloads";
            return false;
        }
    }
    if (warmupRefs != 0 && maxRefs != 0 && warmupRefs >= maxRefs) {
        error = "warmup_refs must be below max_refs";
        return false;
    }
    if (chunkRefs == 0 || chunkRefs > (1u << 20)) {
        error = "chunk_refs must be in [1, 1048576]";
        return false;
    }

    // Everything makeTlb()/the TLB constructors would tps_fatal on —
    // a daemon refuses, it does not abort.
    const TlbConfig &c = tlb;
    if (c.entries == 0) {
        error = "tlb.entries must be positive";
        return false;
    }
    if (c.smallLog2 >= c.largeLog2) {
        error = "tlb.small_log2 must be below tlb.large_log2";
        return false;
    }
    auto isPow2 = [](std::size_t v) {
        return v != 0 && (v & (v - 1)) == 0;
    };
    if (c.organization == TlbOrganization::SetAssociative) {
        if (c.ways == 0 || c.entries % c.ways != 0 ||
            !isPow2(c.entries / c.ways)) {
            error = "set-assoc tlb needs entries divisible by ways "
                    "with a power-of-two set count";
            return false;
        }
    }
    if (c.organization == TlbOrganization::Split &&
        (c.splitLargeEntries == 0 ||
         c.splitLargeEntries >= c.entries)) {
        error = "split tlb needs 0 < split_large_entries < entries";
        return false;
    }
    if (c.organization == TlbOrganization::TwoLevel &&
        c.l1Entries == 0) {
        error = "two-level tlb needs l1_entries > 0";
        return false;
    }
    if (c.replacement == ReplPolicy::TreePLRU) {
        const std::size_t assoc =
            c.organization == TlbOrganization::SetAssociative
                ? c.ways
                : c.entries;
        if (!isPow2(assoc) || assoc > 64) {
            error = "tree_plru needs a power-of-two associativity "
                    "<= 64";
            return false;
        }
    }

    if (policy.kind == core::PolicySpec::Kind::TwoSize) {
        const TwoSizeConfig &p = policy.twoSize;
        if (p.smallLog2 >= p.largeLog2) {
            error = "policy.small_log2 must be below policy.large_log2";
            return false;
        }
        if (p.blocksPerChunk() > kMaxBlocksPerChunk) {
            error = "policy page-size span exceeds the supported "
                    "blocks per chunk";
            return false;
        }
        if (p.window == 0) {
            error = "policy.window must be positive";
            return false;
        }
    }
    return true;
}

core::RunOptions
SessionSpec::runOptions() const
{
    core::RunOptions options;
    options.maxRefs = maxRefs;
    options.warmupRefs = warmupRefs;
    options.wsWindow = wsWindow;
    options.chunkRefs = static_cast<std::size_t>(chunkRefs);
    options.lifecycle = lifecycle;
    options.exec = core::ExecMode::Batched;
    options.timeseries.intervalRefs = tsIntervalRefs;
    options.timeseries.missSampleCapacity =
        static_cast<std::size_t>(tsMissSamples);
    options.timeseries.missSampleSeed = tsMissSeed;
    options.events.sampleEvery = eventsSampleEvery;
    options.events.capacity =
        static_cast<std::size_t>(eventsCapacity);
    return options;
}

std::string
sessionStatsJson(const core::ExperimentResult &result)
{
    obs::StatRegistry registry;
    result.exportTo(registry, "session");
    std::ostringstream os;
    registry.writeJson(os);
    os << '\n';
    return os.str();
}

std::string
sessionTimeseriesJson(const core::ExperimentResult &result)
{
    if (result.timeseries == nullptr)
        return "";
    const obs::TimeSeries &series = *result.timeseries;
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.key("schema").value(obs::kTimeSeriesSchema);
    w.key("interval_refs").value(series.intervalRefs);
    w.key("cells").beginObject();
    w.key(obs::slugify(series.workload) + "." +
          obs::slugify(series.tlbName) + "." +
          obs::slugify(series.policyName));
    series.writeJson(w);
    w.endObject();
    w.endObject();
    w.finish();
    os << '\n';
    return os.str();
}

} // namespace tps::net
