/**
 * @file
 * tps-session-spec-v1: the JSON experiment description a client
 * Submits to tpsd, shared verbatim by `tps_submit --local` so the
 * daemon path and the bench-harness path run *the same* parsed spec —
 * the precondition of the byte-identity gate (daemon stats ==
 * --local stats under tps_stats_diff).
 *
 * A spec names either a registry workload (replayed server-side from
 * its deterministic generator) or a streamed trace (the client
 * uploads references in TraceChunk frames), plus the TLB
 * configuration, the page-size policy and the run controls.  Fields
 * mirror core::RunOptions / TlbConfig / core::PolicySpec one-to-one;
 * serialization round-trips exactly so a spec can be journaled and
 * re-run.
 */

#ifndef TPS_NET_SPEC_H_
#define TPS_NET_SPEC_H_

#include <cstdint>
#include <string>

#include "core/experiment.h"
#include "tlb/factory.h"

namespace tps::net
{

inline constexpr const char *kSessionSpecSchema = "tps-session-spec-v1";

/** One experiment session request (see file comment). */
struct SessionSpec
{
    /** Registry workload name; empty iff @ref streamTrace. */
    std::string workload;

    /** Trace arrives over the wire instead of from the registry. */
    bool streamTrace = false;

    // Run controls (subset of core::RunOptions the daemon exposes;
    // exec is always Batched — the resumable engine).
    std::uint64_t maxRefs = 100'000;
    std::uint64_t warmupRefs = 0;
    std::uint64_t wsWindow = 0;
    std::uint64_t chunkRefs = 4096;
    bool lifecycle = false;

    // Interval telemetry (0 = disabled).
    std::uint64_t tsIntervalRefs = 0;
    std::uint64_t tsMissSamples = 0;
    std::uint64_t tsMissSeed = 0x9E3779B97F4A7C15ULL;

    // Event telemetry (0 = disabled).
    std::uint64_t eventsSampleEvery = 0;
    std::uint64_t eventsCapacity = 65'536;

    TlbConfig tlb;
    core::PolicySpec policy;

    /** Serialize (canonical field order, round-trips exactly). */
    std::string toJson() const;

    /** Parse + structural validation; false with @p error set on
     *  malformed JSON, wrong schema, or unknown enum spelling. */
    static bool fromJson(const std::string &text, SessionSpec &out,
                         std::string &error);

    /**
     * Semantic validation: bounded refs, warmup below maxRefs, a
     * workload that exists (or streaming), a TLB shape makeTlb()
     * accepts.  Everything the daemon must refuse instead of
     * tps_fatal-ing on.
     */
    bool validate(std::string &error) const;

    /** The RunOptions this spec means (always ExecMode::Batched). */
    core::RunOptions runOptions() const;
};

/**
 * The canonical stats dump of one finished session: the result
 * exported under the "session" prefix, serialized with no manifest so
 * the bytes depend only on the simulation.  tpsd's Result frame,
 * `tps_submit --stats-out` and `tps_submit --local` all emit exactly
 * this string.
 */
std::string sessionStatsJson(const core::ExperimentResult &result);

/**
 * The session's interval telemetry as one tps-timeseries-v1 document
 * (single cell, keyed like obs::TimeSeriesSink would).  Empty string
 * when the run recorded no timeseries.
 */
std::string sessionTimeseriesJson(const core::ExperimentResult &result);

} // namespace tps::net

#endif // TPS_NET_SPEC_H_
