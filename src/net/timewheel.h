/**
 * @file
 * Hashed timing wheel driving tpsd's per-session idle timeouts.
 *
 * The daemon needs one deadline per session ("evict if the client
 * neither feeds nor polls it for idleTimeoutMs") and reschedules it on
 * every client touch.  A wheel makes schedule/cancel O(1) and expiry
 * O(ticks elapsed + entries expired): deadlines hash into
 * `slots` buckets of `tickMs` granularity, and advanceTo() walks only
 * the ticks that actually passed.  Deadlines further out than one
 * revolution simply stay in their bucket until their turn comes round
 * (the classic "rounds" check compares the stored absolute deadline).
 *
 * The wheel is time-source-agnostic — callers pass absolute
 * millisecond timestamps from whatever clock they use — which is what
 * makes the eviction tests deterministic: they drive a fake clock.
 * Not thread-safe; tpsd owns it from the event-loop thread.
 */

#ifndef TPS_NET_TIMEWHEEL_H_
#define TPS_NET_TIMEWHEEL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace tps::net
{

class TimeWheel
{
  public:
    /** @p tick_ms granularity (deadlines round UP to the next tick so
     *  a timeout never fires early), @p slots buckets. */
    explicit TimeWheel(std::uint64_t tick_ms = 100,
                       std::size_t slots = 256);

    /**
     * Arm (or re-arm) @p id to expire at absolute @p deadline_ms.
     * Re-scheduling an armed id replaces its previous deadline — the
     * "client touched the session, push the timeout out" operation.
     */
    void schedule(std::uint64_t id, std::uint64_t deadline_ms);

    /** Disarm @p id (no-op when not armed). */
    void cancel(std::uint64_t id);

    /**
     * Advance the wheel to @p now_ms and collect every id whose
     * deadline has passed, in deadline order (ties by id, so expiry
     * order is deterministic).  Monotonic: a @p now_ms earlier than a
     * previous call is clamped to it.
     */
    std::vector<std::uint64_t> advanceTo(std::uint64_t now_ms);

    /** Armed entries. */
    std::size_t size() const { return deadlines_.size(); }

    /**
     * Earliest armed deadline, or UINT64_MAX when empty — the event
     * loop's poll-timeout hint.  O(armed entries); sessions number in
     * the dozens, so a heap would be ceremony.
     */
    std::uint64_t nextDeadline() const;

  private:
    std::size_t slotOf(std::uint64_t deadline_ms) const;

    std::uint64_t tick_ms_;
    std::uint64_t current_tick_ = 0; ///< wheel time in ticks
    std::vector<std::vector<std::uint64_t>> slots_;
    std::unordered_map<std::uint64_t, std::uint64_t> deadlines_;
};

} // namespace tps::net

#endif // TPS_NET_TIMEWHEEL_H_
