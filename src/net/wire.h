/**
 * @file
 * tps-wire-v1: the length-prefixed binary framing `tpsd` and
 * `tps_submit` speak (DESIGN.md §14).
 *
 * Every frame is
 *
 *     u32 LE payload_length | u8 frame_type | payload bytes
 *
 * so a reader always knows how many bytes complete the current frame
 * and framing survives any TCP segmentation.  Integers inside
 * payloads are little-endian; structured payloads (session specs,
 * status, results) are UTF-8 JSON so they stay debuggable with nc and
 * reuse obs::parseJson on both ends.
 *
 * Versioning: the connection opens with Hello carrying kWireVersion;
 * the server answers HelloOk (same version) or an Error frame and
 * closes.  A malformed frame — oversized length, unknown type, or a
 * payload that fails its type's shape check — is answered with one
 * Error frame and a connection close, never a crash or a silent skip.
 */

#ifndef TPS_NET_WIRE_H_
#define TPS_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/memref.h"

namespace tps::net
{

inline constexpr std::uint32_t kWireVersion = 1;

/** Hard ceiling on one frame's payload: keeps a hostile or buggy
 *  peer from ballooning the parser's buffer (trace uploads chunk well
 *  below this). */
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/** Frame header size: u32 length + u8 type. */
inline constexpr std::size_t kFrameHeader = 5;

/** Serialized reference inside a TraceChunk payload:
 *  u64 vaddr | u8 type | u8 size. */
inline constexpr std::size_t kWireRefBytes = 10;

enum class FrameType : std::uint8_t
{
    // client -> server
    Hello = 0x01,      ///< u32 wire version
    Submit = 0x03,     ///< JSON tps-session-spec-v1
    TraceChunk = 0x06, ///< u64 session id + N x kWireRefBytes refs
    TraceDone = 0x07,  ///< u64 session id
    Poll = 0x08,       ///< u64 session id
    Cancel = 0x0A,     ///< u64 session id

    // server -> client
    HelloOk = 0x02,   ///< u32 wire version
    Accepted = 0x04,  ///< JSON {"session_id": N}
    Rejected = 0x05,  ///< JSON {"reason", "retry_after_ms"}
    Status = 0x09,    ///< JSON session status (see DESIGN.md §14)
    Result = 0x0B,    ///< JSON tps-stats-v1 document
    Telemetry = 0x0C, ///< JSON interval rows since the last Poll
    Error = 0x0D,     ///< JSON {"error": "..."}
};

/** True for the codes enumerated above (anything else is malformed). */
bool isKnownFrameType(std::uint8_t type);

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Error;
    std::string payload;
};

// ------------------------------------------------------ serialization

void putU32(std::string &out, std::uint32_t v);
void putU64(std::string &out, std::uint64_t v);

/** Append one complete frame to @p out. */
void appendFrame(std::string &out, FrameType type,
                 const std::string &payload);

/** Hello / HelloOk payload. */
std::string encodeVersion(std::uint32_t version);

/** TraceChunk payload for @p n refs of @p session. */
std::string encodeTraceChunk(std::uint64_t session, const MemRef *refs,
                             std::size_t n);

/** u64-only payload (TraceDone / Poll / Cancel). */
std::string encodeSessionId(std::uint64_t session);

// -------------------------------------------------------- deserialization

/** Bounds-checked little-endian reader over one payload. */
class PayloadReader
{
  public:
    explicit PayloadReader(const std::string &payload)
        : data_(payload)
    {
    }

    bool u8(std::uint8_t &v);
    bool u32(std::uint32_t &v);
    bool u64(std::uint64_t &v);
    std::size_t remaining() const { return data_.size() - off_; }
    bool done() const { return off_ == data_.size(); }

  private:
    const std::string &data_;
    std::size_t off_ = 0;
};

/** Decode a TraceChunk payload; false when the shape is wrong (bad
 *  length modulus or an out-of-range RefType). */
bool decodeTraceChunk(const std::string &payload, std::uint64_t &session,
                      std::vector<MemRef> &refs);

/**
 * Incremental frame decoder: feed() arbitrary byte slices as they
 * arrive, then drain complete frames with next().  Malformed framing
 * (length above kMaxFramePayload or an unknown type byte) is sticky —
 * once detected, next() keeps returning Malformed and the connection
 * must be torn down, because a misframed stream has no recoverable
 * resync point.
 */
class FrameParser
{
  public:
    enum class Result
    {
        NeedMore, ///< no complete frame buffered yet
        Ready,    ///< one frame decoded into @p out
        Malformed ///< framing violated; close the connection
    };

    void feed(const char *data, std::size_t n);
    Result next(Frame &out);

    /** Bytes buffered but not yet consumed (tests). */
    std::size_t buffered() const { return buffer_.size() - consumed_; }

  private:
    std::string buffer_;
    std::size_t consumed_ = 0;
    bool malformed_ = false;
};

} // namespace tps::net

#endif // TPS_NET_WIRE_H_
