/**
 * @file
 * tps-wire-v1 framing (see wire.h for the grammar).
 */

#include "net/wire.h"

#include <cstring>

namespace tps::net
{

bool
isKnownFrameType(std::uint8_t type)
{
    switch (static_cast<FrameType>(type)) {
      case FrameType::Hello:
      case FrameType::HelloOk:
      case FrameType::Submit:
      case FrameType::Accepted:
      case FrameType::Rejected:
      case FrameType::TraceChunk:
      case FrameType::TraceDone:
      case FrameType::Poll:
      case FrameType::Status:
      case FrameType::Cancel:
      case FrameType::Result:
      case FrameType::Telemetry:
      case FrameType::Error:
        return true;
    }
    return false;
}

void
putU32(std::string &out, std::uint32_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    putU32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
    putU32(out, static_cast<std::uint32_t>(v >> 32));
}

void
appendFrame(std::string &out, FrameType type, const std::string &payload)
{
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    out.push_back(static_cast<char>(type));
    out += payload;
}

std::string
encodeVersion(std::uint32_t version)
{
    std::string payload;
    putU32(payload, version);
    return payload;
}

std::string
encodeTraceChunk(std::uint64_t session, const MemRef *refs,
                 std::size_t n)
{
    std::string payload;
    payload.reserve(8 + n * kWireRefBytes);
    putU64(payload, session);
    for (std::size_t i = 0; i < n; ++i) {
        putU64(payload, refs[i].vaddr);
        payload.push_back(
            static_cast<char>(static_cast<std::uint8_t>(refs[i].type)));
        payload.push_back(static_cast<char>(refs[i].size));
    }
    return payload;
}

std::string
encodeSessionId(std::uint64_t session)
{
    std::string payload;
    putU64(payload, session);
    return payload;
}

bool
PayloadReader::u8(std::uint8_t &v)
{
    if (remaining() < 1)
        return false;
    v = static_cast<std::uint8_t>(data_[off_]);
    off_ += 1;
    return true;
}

bool
PayloadReader::u32(std::uint32_t &v)
{
    if (remaining() < 4)
        return false;
    const auto *p =
        reinterpret_cast<const unsigned char *>(data_.data() + off_);
    v = static_cast<std::uint32_t>(p[0]) |
        static_cast<std::uint32_t>(p[1]) << 8 |
        static_cast<std::uint32_t>(p[2]) << 16 |
        static_cast<std::uint32_t>(p[3]) << 24;
    off_ += 4;
    return true;
}

bool
PayloadReader::u64(std::uint64_t &v)
{
    // All-or-nothing: a failed read must not consume the low half.
    if (remaining() < 8)
        return false;
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    if (!u32(lo) || !u32(hi))
        return false;
    v = static_cast<std::uint64_t>(lo) |
        static_cast<std::uint64_t>(hi) << 32;
    return true;
}

bool
decodeTraceChunk(const std::string &payload, std::uint64_t &session,
                 std::vector<MemRef> &refs)
{
    if (payload.size() < 8 || (payload.size() - 8) % kWireRefBytes != 0)
        return false;
    PayloadReader reader(payload);
    if (!reader.u64(session))
        return false;
    const std::size_t n = (payload.size() - 8) / kWireRefBytes;
    refs.clear();
    refs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        MemRef ref;
        std::uint8_t type = 0;
        std::uint8_t size = 0;
        if (!reader.u64(ref.vaddr) || !reader.u8(type) ||
            !reader.u8(size))
            return false;
        if (type > static_cast<std::uint8_t>(RefType::Store))
            return false;
        ref.type = static_cast<RefType>(type);
        ref.size = size;
        refs.push_back(ref);
    }
    return reader.done();
}

void
FrameParser::feed(const char *data, std::size_t n)
{
    if (malformed_)
        return; // the stream is dead; do not grow the buffer
    // Compact once the consumed prefix dominates, so a long-lived
    // connection does not accumulate every frame it ever received.
    if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
        buffer_.erase(0, consumed_);
        consumed_ = 0;
    }
    buffer_.append(data, n);
}

FrameParser::Result
FrameParser::next(Frame &out)
{
    if (malformed_)
        return Result::Malformed;
    const std::size_t avail = buffer_.size() - consumed_;
    if (avail < kFrameHeader)
        return Result::NeedMore;
    const auto *p = reinterpret_cast<const unsigned char *>(
        buffer_.data() + consumed_);
    const std::uint32_t length = static_cast<std::uint32_t>(p[0]) |
                                 static_cast<std::uint32_t>(p[1]) << 8 |
                                 static_cast<std::uint32_t>(p[2]) << 16 |
                                 static_cast<std::uint32_t>(p[3]) << 24;
    const std::uint8_t type = p[4];
    if (length > kMaxFramePayload || !isKnownFrameType(type)) {
        malformed_ = true;
        return Result::Malformed;
    }
    if (avail < kFrameHeader + length)
        return Result::NeedMore;
    out.type = static_cast<FrameType>(type);
    out.payload.assign(buffer_, consumed_ + kFrameHeader, length);
    consumed_ += kFrameHeader + length;
    return Result::Ready;
}

} // namespace tps::net
