/**
 * @file
 * Hashed timing wheel (see timewheel.h).
 */

#include "net/timewheel.h"

#include <algorithm>
#include <limits>

namespace tps::net
{

TimeWheel::TimeWheel(std::uint64_t tick_ms, std::size_t slots)
    : tick_ms_(tick_ms == 0 ? 1 : tick_ms),
      slots_(slots == 0 ? 1 : slots)
{
}

std::size_t
TimeWheel::slotOf(std::uint64_t deadline_ms) const
{
    // Round up: an entry must never be visited before its deadline.
    const std::uint64_t tick =
        (deadline_ms + tick_ms_ - 1) / tick_ms_;
    return static_cast<std::size_t>(tick % slots_.size());
}

void
TimeWheel::schedule(std::uint64_t id, std::uint64_t deadline_ms)
{
    cancel(id);
    // Store the tick-aligned deadline (rounded up, so nothing fires
    // early): nextDeadline() then agrees exactly with the tick at
    // which advanceTo() will visit the entry's bucket — an event loop
    // sleeping until nextDeadline() wakes to a real expiry, never to
    // a not-due-yet entry it would spin on.
    deadline_ms = (deadline_ms + tick_ms_ - 1) / tick_ms_ * tick_ms_;
    const std::uint64_t floor_ms = (current_tick_ + 1) * tick_ms_;
    if (deadline_ms < floor_ms)
        deadline_ms = floor_ms;
    deadlines_[id] = deadline_ms;
    slots_[slotOf(deadline_ms)].push_back(id);
}

void
TimeWheel::cancel(std::uint64_t id)
{
    const auto it = deadlines_.find(id);
    if (it == deadlines_.end())
        return;
    auto &bucket = slots_[slotOf(it->second)];
    bucket.erase(std::remove(bucket.begin(), bucket.end(), id),
                 bucket.end());
    deadlines_.erase(it);
}

std::vector<std::uint64_t>
TimeWheel::advanceTo(std::uint64_t now_ms)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> expired;
    const std::uint64_t target_tick = now_ms / tick_ms_;
    while (current_tick_ < target_tick) {
        ++current_tick_;
        auto &bucket =
            slots_[static_cast<std::size_t>(current_tick_ %
                                            slots_.size())];
        // An entry in this bucket expires now only when its absolute
        // deadline is due — otherwise it is a later revolution's.
        for (std::size_t i = 0; i < bucket.size();) {
            const std::uint64_t id = bucket[i];
            const std::uint64_t deadline = deadlines_.at(id);
            if (deadline <= current_tick_ * tick_ms_ &&
                deadline <= now_ms) {
                expired.emplace_back(deadline, id);
                deadlines_.erase(id);
                bucket[i] = bucket.back();
                bucket.pop_back();
            } else {
                ++i;
            }
        }
        // Skip idle revolutions in one hop: if nothing is armed,
        // jump straight to the target tick.
        if (deadlines_.empty()) {
            current_tick_ = target_tick;
            break;
        }
    }
    std::sort(expired.begin(), expired.end());
    std::vector<std::uint64_t> ids;
    ids.reserve(expired.size());
    for (const auto &[deadline, id] : expired)
        ids.push_back(id);
    return ids;
}

std::uint64_t
TimeWheel::nextDeadline() const
{
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (const auto &[id, deadline] : deadlines_)
        best = std::min(best, deadline);
    return best;
}

} // namespace tps::net
