/**
 * @file
 * tpsd's engine (see server.h for the threading model).
 *
 * Layout of this file: wire-level JSON payload builders, then the
 * three pimpl structs (Conn, Session, Impl), then the Impl methods in
 * lifecycle order — sockets, event loop, frame dispatch, admission,
 * quantum execution on the pool, completion/eviction/journaling, the
 * HTTP /report endpoint — and finally the thin Server facade.
 */

#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <mutex>
#include <sstream>
#include <utility>
#include <vector>

#include "core/experiment_session.h"
#include "obs/atomic_file.h"
#include "obs/campaign_journal.h"
#include "obs/heartbeat.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/report_html.h"
#include "obs/timeseries.h"
#include "trace/vector_trace.h"
#include "util/thread_pool.h"
#include "workloads/registry.h"

namespace tps::net
{

namespace
{

std::uint64_t
nowSteadyMs()
{
    using namespace std::chrono;
    return static_cast<std::uint64_t>(
        duration_cast<milliseconds>(
            steady_clock::now().time_since_epoch())
            .count());
}

bool
setNonblocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string
errorJson(const std::string &message)
{
    std::ostringstream os;
    obs::JsonWriter w(os, false);
    w.beginObject();
    w.key("error").value(message);
    w.endObject();
    w.finish();
    return os.str();
}

std::string
acceptedJson(std::uint64_t session_id)
{
    std::ostringstream os;
    obs::JsonWriter w(os, false);
    w.beginObject();
    w.key("session_id").value(session_id);
    w.endObject();
    w.finish();
    return os.str();
}

std::string
rejectedJson(const std::string &reason, std::uint64_t retry_after_ms)
{
    std::ostringstream os;
    obs::JsonWriter w(os, false);
    w.beginObject();
    w.key("reason").value(reason);
    w.key("retry_after_ms").value(retry_after_ms);
    w.endObject();
    w.finish();
    return os.str();
}

enum class SessionState
{
    Receiving, ///< streamed trace still uploading
    Queued,    ///< admitted; a quantum is queued on (or bound for) the pool
    Running,   ///< a worker is advancing the engine right now
    Done,      ///< exhausted; result available
    Cancelled, ///< client Cancel; partial result available
    Failed,    ///< engine threw; see failure
    Evicted,   ///< idle timeout; partial result when it got to run
};

const char *
stateName(SessionState s)
{
    switch (s) {
    case SessionState::Receiving:
        return "receiving";
    case SessionState::Queued:
        return "queued";
    case SessionState::Running:
        return "running";
    case SessionState::Done:
        return "done";
    case SessionState::Cancelled:
        return "cancelled";
    case SessionState::Failed:
        return "failed";
    case SessionState::Evicted:
        return "evicted";
    }
    return "?";
}

bool
isTerminal(SessionState s)
{
    return s == SessionState::Done || s == SessionState::Cancelled ||
           s == SessionState::Failed || s == SessionState::Evicted;
}

} // namespace

// ------------------------------------------------------------ structs

/** One TCP connection (wire protocol until sniffed as HTTP). */
struct Server::Conn
{
    int fd = -1;

    // Mode sniffing: the first 4 bytes decide wire vs. HTTP ("GET ").
    bool sniffed = false;
    bool http = false;
    std::string preamble;

    // Wire mode.
    FrameParser parser;
    bool helloDone = false;

    // HTTP mode.
    std::string httpBuf;

    // Outbound bytes not yet written (outOff consumed).
    std::string out;
    std::size_t outOff = 0;
    bool closeAfterFlush = false;

    bool wantWrite() const { return outOff < out.size(); }
};

/**
 * One experiment session.  Owned by the sessions map (loop) via
 * shared_ptr; the in-flight pool task holds a second reference, so an
 * erase never frees an engine a worker still touches.  Snapshot
 * fields are guarded by Impl::mutex; the engine and its borrowed
 * trace/policy/TLB belong to the loop while Receiving and to the
 * single in-flight task afterwards.
 */
struct Server::Session
{
    std::uint64_t id = 0;
    SessionSpec spec;
    std::uint64_t admittedAtMs = 0;

    // ---- guarded by Impl::mutex ----
    SessionState state = SessionState::Receiving;
    bool evicted = false;
    std::uint64_t replayedRefs = 0;
    std::uint64_t measuredRefs = 0;
    std::uint64_t chunks = 0;
    double wallSeconds = 0.0;
    std::vector<std::string> pendingTelemetry;
    std::string resultStats;   ///< canonical "session"-prefixed dump
    std::string journalStats;  ///< same result, "session-<id>" prefix
    std::string resultTs;
    std::string failure;
    std::string workloadName;  ///< from the result (journal fields)
    std::uint64_t resultRefs = 0;
    std::uint64_t resultInstructions = 0;
    double resultCpi = 0.0;
    bool journaled = false;

    // ---- engine; see ownership note above ----
    std::unique_ptr<TraceSource> trace;
    std::unique_ptr<PageSizePolicy> policy;
    std::unique_ptr<Tlb> tlb;
    std::unique_ptr<core::ExperimentSession> engine;
    std::size_t tsSent = 0; ///< interval rows already serialized (task-only)

    std::atomic<bool> cancelRequested{false};

    // ---- streamed upload (Receiving only; loop-owned) ----
    std::vector<MemRef> streamedRefs;
    std::uint64_t streamedBytes = 0;
};

struct Server::Impl
{
    ServerConfig config;
    std::atomic<bool> *stopFlag = nullptr;

    int listenFd = -1;
    int wakeRead = -1;
    int wakeWrite = -1;

    TimeWheel wheel{50, 256};
    std::map<int, std::unique_ptr<Conn>> conns;

    mutable std::mutex mutex;
    std::map<std::uint64_t, std::shared_ptr<Session>> sessions;
    std::uint64_t nextSessionId = 1;

    // Daemon counters (guarded by mutex; exported as net.*).
    struct
    {
        std::uint64_t connsAccepted = 0;
        std::uint64_t framesIn = 0;
        std::uint64_t framesOut = 0;
        std::uint64_t bytesIn = 0;
        std::uint64_t bytesOut = 0;
        std::uint64_t malformedFrames = 0;
        std::uint64_t admitted = 0;
        std::uint64_t rejected = 0;
        std::uint64_t done = 0;
        std::uint64_t cancelled = 0;
        std::uint64_t failed = 0;
        std::uint64_t evicted = 0;
        std::uint64_t httpRequests = 0;
    } counters;

    std::string hostname;
    std::string createdUtc;
    std::uint64_t startedMs = 0;
    std::uint64_t nextHeartbeatMs = 0;

    std::unique_ptr<obs::HeartbeatWriter> heartbeat;
    std::unique_ptr<obs::CampaignJournal> journal;

    // Destroyed first (reverse member order): workers join before the
    // sessions they reference can go away.
    std::unique_ptr<util::ThreadPool> pool;

    ~Impl();

    // lifecycle
    bool start(std::string &error, std::uint16_t &port_out);
    void runLoop();
    void drainAndFinish();

    // loop internals
    void acceptConns();
    void wakeup(std::uint64_t session_id);
    void drainWakePipe();
    bool handleConnRead(Conn &conn);
    bool flushConn(Conn &conn);
    void closeConn(int fd);
    void sendFrame(Conn &conn, FrameType type, const std::string &payload);

    // frame dispatch (loop thread); false closes after flush
    bool handleFrame(Conn &conn, const Frame &frame);
    void handleSubmit(Conn &conn, const Frame &frame);
    void handleTraceChunk(Conn &conn, const Frame &frame);
    void handleTraceDone(Conn &conn, std::uint64_t id);
    void handlePoll(Conn &conn, std::uint64_t id);
    void handleCancel(Conn &conn, std::uint64_t id);

    // sessions
    std::shared_ptr<Session> findSession(std::uint64_t id);
    bool admit(const SessionSpec &spec, std::string &reason);
    bool buildEngine(Session &s, std::string &error);
    void submitQuantum(std::shared_ptr<Session> s);
    void runQuantum(const std::shared_ptr<Session> &s);
    std::string serializeTelemetry(Session &s);
    void onTaskNotify(std::uint64_t id);
    void finalizeSession(const std::shared_ptr<Session> &s);
    void onIdleExpire(std::uint64_t id);
    void touch(std::uint64_t id);
    std::string statusJsonLocked(const Session &s,
                                 bool result_follows) const;

    // artifacts
    void journalSessionLocked(Session &s);
    void writeHeartbeat(const std::string &state);
    obs::Heartbeat buildHeartbeat(const std::string &state);

    // HTTP
    void handleHttp(Conn &conn);
    std::string httpResponse(int code, const std::string &reason,
                             const std::string &body) const;
    std::string renderIndex();
    bool renderSession(std::uint64_t id, std::string &html);
};

Server::Impl::~Impl()
{
    pool.reset(); // join workers before tearing anything else down
    for (auto &[fd, conn] : conns)
        ::close(fd);
    conns.clear();
    if (listenFd >= 0)
        ::close(listenFd);
    if (wakeRead >= 0)
        ::close(wakeRead);
    if (wakeWrite >= 0)
        ::close(wakeWrite);
}

// ----------------------------------------------------------- lifecycle

bool
Server::Impl::start(std::string &error, std::uint16_t &port_out)
{
    hostname = obs::RunManifest::currentHostname();
    createdUtc = obs::RunManifest::currentTimestampUtc();
    startedMs = nowSteadyMs();

    if (!config.statusDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(config.statusDir, ec);
        if (ec) {
            error = config.statusDir + ": " + ec.message();
            return false;
        }
        heartbeat = std::make_unique<obs::HeartbeatWriter>(
            config.statusDir + "/heartbeat.json");
        journal = std::make_unique<obs::CampaignJournal>(
            config.statusDir + "/campaign.jsonl");
        try {
            journal->start("tpsd", 0, "tpsd", createdUtc);
        } catch (const std::exception &e) {
            error = e.what();
            return false;
        }
    }

    listenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config.port);
    if (::inet_pton(AF_INET, config.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        error = config.bindAddress + ": not an IPv4 address";
        return false;
    }
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = std::string("bind: ") + std::strerror(errno);
        return false;
    }
    if (::listen(listenFd, 64) != 0) {
        error = std::string("listen: ") + std::strerror(errno);
        return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        error = std::string("getsockname: ") + std::strerror(errno);
        return false;
    }
    port_out = ntohs(addr.sin_port);
    if (!setNonblocking(listenFd)) {
        error = "fcntl(listen): " + std::string(std::strerror(errno));
        return false;
    }

    int pipefd[2];
    if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0) {
        error = std::string("pipe2: ") + std::strerror(errno);
        return false;
    }
    wakeRead = pipefd[0];
    wakeWrite = pipefd[1];

    pool = std::make_unique<util::ThreadPool>(
        config.workers == 0 ? 1 : config.workers);

    writeHeartbeat("starting");
    return true;
}

void
Server::Impl::runLoop()
{
    writeHeartbeat("running");
    nextHeartbeatMs = nowSteadyMs() + config.heartbeatIntervalMs;

    std::vector<pollfd> fds;
    std::vector<int> order; // conn fd per fds entry beyond the first two
    while (!stopFlag->load(std::memory_order_relaxed)) {
        fds.clear();
        order.clear();
        fds.push_back({listenFd, POLLIN, 0});
        fds.push_back({wakeRead, POLLIN, 0});
        for (auto &[fd, conn] : conns) {
            short events = POLLIN;
            if (conn->wantWrite())
                events |= POLLOUT;
            fds.push_back({fd, events, 0});
            order.push_back(fd);
        }

        const std::uint64_t now = nowSteadyMs();
        std::uint64_t deadline = nextHeartbeatMs;
        deadline = std::min(deadline, wheel.nextDeadline());
        int timeout = 500;
        if (deadline != std::numeric_limits<std::uint64_t>::max()) {
            const std::uint64_t wait =
                deadline > now ? deadline - now : 0;
            timeout = static_cast<int>(std::min<std::uint64_t>(wait, 500));
        }

        const int ready =
            ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout);
        if (ready < 0 && errno != EINTR)
            break;

        if (ready > 0) {
            if (fds[1].revents & POLLIN)
                drainWakePipe();
            if (fds[0].revents & POLLIN)
                acceptConns();
            for (std::size_t i = 2; i < fds.size(); ++i) {
                const int fd = order[i - 2];
                const auto it = conns.find(fd);
                if (it == conns.end())
                    continue;
                Conn &conn = *it->second;
                bool ok = true;
                if (fds[i].revents & (POLLERR | POLLNVAL))
                    ok = false;
                if (ok && (fds[i].revents & (POLLIN | POLLHUP)))
                    ok = handleConnRead(conn);
                if (ok)
                    ok = flushConn(conn);
                if (!ok)
                    closeConn(fd);
            }
        }

        const std::uint64_t after = nowSteadyMs();
        for (const std::uint64_t id : wheel.advanceTo(after))
            onIdleExpire(id);
        if (after >= nextHeartbeatMs) {
            writeHeartbeat("running");
            nextHeartbeatMs = after + config.heartbeatIntervalMs;
        }
    }

    drainAndFinish();
}

/**
 * Orderly shutdown: cancel every live session, drain the pool (each
 * queued quantum sees cancelRequested and finishes partial), journal
 * whatever produced results, and leave a final "finished" heartbeat.
 */
void
Server::Impl::drainAndFinish()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        for (auto &[id, s] : sessions)
            if (!isTerminal(s->state))
                s->cancelRequested.store(true);
    }
    pool.reset(); // joins; completion notifications go unread, fine

    std::lock_guard<std::mutex> lock(mutex);
    for (auto &[id, s] : sessions) {
        if (s->state == SessionState::Receiving ||
            s->state == SessionState::Queued)
            s->state = SessionState::Cancelled;
        if (isTerminal(s->state) && !s->journaled)
            journalSessionLocked(*s);
    }
    if (heartbeat != nullptr) {
        obs::Heartbeat hb = buildHeartbeat("finished");
        std::string error;
        heartbeat->write(hb, error);
    }
}

// ---------------------------------------------------------- loop internals

void
Server::Impl::acceptConns()
{
    for (;;) {
        const int fd = ::accept4(listenFd, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conns.emplace(fd, std::move(conn));
        std::lock_guard<std::mutex> lock(mutex);
        ++counters.connsAccepted;
    }
}

void
Server::Impl::wakeup(std::uint64_t session_id)
{
    char buf[8];
    std::memcpy(buf, &session_id, sizeof(buf));
    // Nonblocking: a full pipe just means the loop has plenty of
    // wakeups pending already.
    (void)!::write(wakeWrite, buf, sizeof(buf));
}

void
Server::Impl::drainWakePipe()
{
    char buf[8 * 64];
    for (;;) {
        const ssize_t n = ::read(wakeRead, buf, sizeof(buf));
        if (n <= 0)
            break;
        for (ssize_t off = 0; off + 8 <= n; off += 8) {
            std::uint64_t id = 0;
            std::memcpy(&id, buf + off, sizeof(id));
            if (id != 0)
                onTaskNotify(id);
        }
    }
}

bool
Server::Impl::handleConnRead(Conn &conn)
{
    char buf[65536];
    for (;;) {
        const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            {
                std::lock_guard<std::mutex> lock(mutex);
                counters.bytesIn += static_cast<std::uint64_t>(n);
            }
            const char *data = buf;
            std::size_t size = static_cast<std::size_t>(n);
            if (!conn.sniffed) {
                conn.preamble.append(data, size);
                if (conn.preamble.size() < 4)
                    continue;
                conn.sniffed = true;
                conn.http = conn.preamble.compare(0, 4, "GET ") == 0;
                data = conn.preamble.data();
                size = conn.preamble.size();
                if (conn.http)
                    conn.httpBuf.assign(data, size);
                else
                    conn.parser.feed(data, size);
                conn.preamble.clear();
                continue;
            }
            if (conn.http)
                conn.httpBuf.append(data, size);
            else
                conn.parser.feed(data, size);
            continue;
        }
        if (n == 0)
            return conn.wantWrite(); // peer closed; flush what remains
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        return false;
    }

    if (conn.http) {
        if (conn.httpBuf.size() > 8192) // header cap; no bodies served
            return false;
        handleHttp(conn);
        return true;
    }

    Frame frame;
    while (!conn.closeAfterFlush) {
        const FrameParser::Result r = conn.parser.next(frame);
        if (r == FrameParser::Result::NeedMore)
            break;
        if (r == FrameParser::Result::Malformed) {
            {
                std::lock_guard<std::mutex> lock(mutex);
                ++counters.malformedFrames;
            }
            sendFrame(conn, FrameType::Error,
                      errorJson("malformed frame"));
            conn.closeAfterFlush = true;
            break;
        }
        {
            std::lock_guard<std::mutex> lock(mutex);
            ++counters.framesIn;
        }
        if (!handleFrame(conn, frame))
            conn.closeAfterFlush = true;
    }
    return true;
}

bool
Server::Impl::flushConn(Conn &conn)
{
    while (conn.outOff < conn.out.size()) {
        const ssize_t n =
            ::send(conn.fd, conn.out.data() + conn.outOff,
                   conn.out.size() - conn.outOff, MSG_NOSIGNAL);
        if (n > 0) {
            conn.outOff += static_cast<std::size_t>(n);
            std::lock_guard<std::mutex> lock(mutex);
            counters.bytesOut += static_cast<std::uint64_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true; // POLLOUT will resume
        return false;
    }
    conn.out.clear();
    conn.outOff = 0;
    return !conn.closeAfterFlush;
}

void
Server::Impl::closeConn(int fd)
{
    const auto it = conns.find(fd);
    if (it == conns.end())
        return;
    ::close(fd);
    conns.erase(it);
}

void
Server::Impl::sendFrame(Conn &conn, FrameType type,
                        const std::string &payload)
{
    appendFrame(conn.out, type, payload);
    std::lock_guard<std::mutex> lock(mutex);
    ++counters.framesOut;
}

// ------------------------------------------------------- frame dispatch

bool
Server::Impl::handleFrame(Conn &conn, const Frame &frame)
{
    if (!conn.helloDone) {
        if (frame.type != FrameType::Hello) {
            sendFrame(conn, FrameType::Error,
                      errorJson("expected Hello"));
            return false;
        }
        PayloadReader r(frame.payload);
        std::uint32_t version = 0;
        if (!r.u32(version) || !r.done()) {
            sendFrame(conn, FrameType::Error,
                      errorJson("malformed Hello"));
            return false;
        }
        if (version != kWireVersion) {
            sendFrame(conn, FrameType::Error,
                      errorJson("unsupported wire version"));
            return false;
        }
        conn.helloDone = true;
        sendFrame(conn, FrameType::HelloOk, encodeVersion(kWireVersion));
        return true;
    }

    switch (frame.type) {
    case FrameType::Submit:
        handleSubmit(conn, frame);
        return true;
    case FrameType::TraceChunk:
        handleTraceChunk(conn, frame);
        return true;
    case FrameType::TraceDone:
    case FrameType::Poll:
    case FrameType::Cancel: {
        PayloadReader r(frame.payload);
        std::uint64_t id = 0;
        if (!r.u64(id) || !r.done()) {
            sendFrame(conn, FrameType::Error,
                      errorJson("malformed session id payload"));
            return false;
        }
        if (frame.type == FrameType::TraceDone)
            handleTraceDone(conn, id);
        else if (frame.type == FrameType::Poll)
            handlePoll(conn, id);
        else
            handleCancel(conn, id);
        return true;
    }
    default:
        // Server-to-client frame types arriving here are a protocol
        // violation even though the framing was well-formed.
        sendFrame(conn, FrameType::Error,
                  errorJson("unexpected frame type"));
        return false;
    }
}

void
Server::Impl::handleSubmit(Conn &conn, const Frame &frame)
{
    SessionSpec spec;
    std::string error;
    if (!SessionSpec::fromJson(frame.payload, spec, error) ||
        !spec.validate(error)) {
        sendFrame(conn, FrameType::Error, errorJson(error));
        return;
    }
    if (spec.maxRefs == 0) {
        // The daemon predicts load from max_refs; unbounded sessions
        // would make admission control meaningless.
        sendFrame(conn, FrameType::Error,
                  errorJson("tpsd requires max_refs > 0"));
        return;
    }

    std::string reason;
    if (!admit(spec, reason)) {
        {
            std::lock_guard<std::mutex> lock(mutex);
            ++counters.rejected;
        }
        sendFrame(conn, FrameType::Rejected,
                  rejectedJson(reason, config.retryAfterMs));
        return;
    }

    auto s = std::make_shared<Session>();
    s->spec = spec;
    s->admittedAtMs = nowSteadyMs();
    {
        std::lock_guard<std::mutex> lock(mutex);
        s->id = nextSessionId++;
        ++counters.admitted;
        sessions.emplace(s->id, s);
    }

    if (!spec.streamTrace) {
        std::string build_error;
        if (!buildEngine(*s, build_error)) {
            std::lock_guard<std::mutex> lock(mutex);
            s->state = SessionState::Failed;
            s->failure = build_error;
            ++counters.failed;
        } else {
            {
                std::lock_guard<std::mutex> lock(mutex);
                s->state = SessionState::Queued;
            }
            submitQuantum(s);
        }
    }

    touch(s->id);
    sendFrame(conn, FrameType::Accepted, acceptedJson(s->id));
}

void
Server::Impl::handleTraceChunk(Conn &conn, const Frame &frame)
{
    std::uint64_t id = 0;
    std::vector<MemRef> refs;
    if (!decodeTraceChunk(frame.payload, id, refs)) {
        sendFrame(conn, FrameType::Error,
                  errorJson("malformed TraceChunk"));
        conn.closeAfterFlush = true;
        return;
    }
    auto s = findSession(id);
    if (s == nullptr) {
        sendFrame(conn, FrameType::Error, errorJson("unknown session"));
        return;
    }
    std::lock_guard<std::mutex> lock(mutex);
    if (s->state != SessionState::Receiving) {
        appendFrame(conn.out, FrameType::Error,
                    errorJson("session is not receiving a trace"));
        ++counters.framesOut;
        return;
    }
    std::uint64_t queued = 0;
    for (const auto &[sid, other] : sessions)
        if (!isTerminal(other->state))
            queued += other->streamedBytes;
    const std::uint64_t add = refs.size() * kWireRefBytes;
    if (queued + add > config.maxQueuedTraceBytes) {
        s->state = SessionState::Failed;
        s->failure = "queued trace bytes cap exceeded";
        ++counters.failed;
        appendFrame(conn.out, FrameType::Error, errorJson(s->failure));
        ++counters.framesOut;
        return;
    }
    s->streamedBytes += add;
    s->streamedRefs.insert(s->streamedRefs.end(), refs.begin(),
                           refs.end());
    touch(id);
}

void
Server::Impl::handleTraceDone(Conn &conn, std::uint64_t id)
{
    auto s = findSession(id);
    if (s == nullptr) {
        sendFrame(conn, FrameType::Error, errorJson("unknown session"));
        return;
    }
    bool start = false;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (s->state != SessionState::Receiving) {
            appendFrame(conn.out, FrameType::Error,
                        errorJson("session is not receiving a trace"));
            ++counters.framesOut;
            return;
        }
        start = true;
    }
    std::string error;
    if (!buildEngine(*s, error)) {
        std::lock_guard<std::mutex> lock(mutex);
        s->state = SessionState::Failed;
        s->failure = error;
        ++counters.failed;
    } else if (start) {
        {
            std::lock_guard<std::mutex> lock(mutex);
            s->state = SessionState::Queued;
        }
        submitQuantum(s);
    }
    touch(id);
    std::lock_guard<std::mutex> lock(mutex);
    appendFrame(conn.out, FrameType::Status,
                statusJsonLocked(*s, false));
    ++counters.framesOut;
}

void
Server::Impl::handlePoll(Conn &conn, std::uint64_t id)
{
    auto s = findSession(id);
    if (s == nullptr) {
        sendFrame(conn, FrameType::Error, errorJson("unknown session"));
        return;
    }
    std::vector<std::string> telemetry;
    std::string status;
    std::string result;
    {
        std::lock_guard<std::mutex> lock(mutex);
        telemetry.swap(s->pendingTelemetry);
        if (isTerminal(s->state) && !s->resultStats.empty())
            result = s->resultStats;
        status = statusJsonLocked(*s, !result.empty());
    }
    for (const std::string &t : telemetry)
        sendFrame(conn, FrameType::Telemetry, t);
    sendFrame(conn, FrameType::Status, status);
    if (!result.empty())
        sendFrame(conn, FrameType::Result, result);
    touch(id);
}

void
Server::Impl::handleCancel(Conn &conn, std::uint64_t id)
{
    auto s = findSession(id);
    if (s == nullptr) {
        sendFrame(conn, FrameType::Error, errorJson("unknown session"));
        return;
    }
    bool finalize = false;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (s->state == SessionState::Receiving) {
            s->state = SessionState::Cancelled;
            s->streamedRefs.clear();
            s->streamedRefs.shrink_to_fit();
            s->streamedBytes = 0;
            finalize = true;
        } else if (!isTerminal(s->state)) {
            // The in-flight (or next) quantum sees the flag, finishes
            // the partial run and posts completion.
            s->cancelRequested.store(true);
        }
    }
    if (finalize)
        finalizeSession(s);
    touch(id);
    std::lock_guard<std::mutex> lock(mutex);
    appendFrame(conn.out, FrameType::Status,
                statusJsonLocked(*s, false));
    ++counters.framesOut;
}

// ------------------------------------------------------------ sessions

std::shared_ptr<Server::Session>
Server::Impl::findSession(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = sessions.find(id);
    return it == sessions.end() ? nullptr : it->second;
}

/** Admission control (loop thread).  False sets @p reason. */
bool
Server::Impl::admit(const SessionSpec &spec, std::string &reason)
{
    std::lock_guard<std::mutex> lock(mutex);
    std::size_t live = 0;
    std::uint64_t predicted = 0;
    for (const auto &[id, s] : sessions) {
        if (isTerminal(s->state))
            continue;
        ++live;
        const std::uint64_t remaining =
            s->spec.maxRefs > s->replayedRefs
                ? s->spec.maxRefs - s->replayedRefs
                : 0;
        predicted += remaining;
    }
    if (live >= config.maxSessions) {
        reason = "session limit reached";
        return false;
    }
    if (config.maxInflightRefs != 0 &&
        predicted + spec.maxRefs > config.maxInflightRefs) {
        reason = "predicted reference backlog too high";
        return false;
    }
    return true;
}

/** Instantiate trace/policy/TLB/engine (loop thread, pre-queue). */
bool
Server::Impl::buildEngine(Session &s, std::string &error)
{
    try {
        if (s.spec.streamTrace) {
            s.trace = std::make_unique<VectorTrace>(
                std::move(s.streamedRefs), "stream");
            s.streamedRefs.clear();
        } else {
            s.trace = workloads::findWorkload(s.spec.workload)
                          .instantiate();
        }
        s.policy = s.spec.policy.instantiate();
        s.tlb = makeTlb(s.spec.tlb);
        std::vector<core::SessionCell> cells(1);
        cells[0].tlb = s.tlb.get();
        cells[0].probe = s.spec.tlb.probe;
        s.engine = std::make_unique<core::ExperimentSession>(
            *s.trace, *s.policy, std::move(cells),
            s.spec.runOptions());
        return true;
    } catch (const std::exception &e) {
        error = e.what();
        return false;
    }
}

void
Server::Impl::submitQuantum(std::shared_ptr<Session> s)
{
    if (pool == nullptr)
        return;
    pool->submit([this, s = std::move(s)] { runQuantum(s); });
}

/**
 * One scheduling quantum (worker thread): advance the engine up to
 * quantumChunks chunks, checking the cancel flag between chunks;
 * serialize any newly closed telemetry intervals; on exhaustion or
 * cancel, finish() the engine and serialize the final stats.  Only
 * then take the mutex to publish, and post the session id to the loop.
 */
void
Server::Impl::runQuantum(const std::shared_ptr<Session> &s)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (isTerminal(s->state))
            return;
        s->state = SessionState::Running;
    }

    bool cancelled = s->cancelRequested.load();
    bool exhausted = false;
    std::string telemetry;
    std::string stats;
    std::string journal_stats;
    std::string ts;
    std::string failure;
    std::string workload_name;
    std::uint64_t result_refs = 0;
    std::uint64_t result_instructions = 0;
    double result_cpi = 0.0;
    double wall = 0.0;

    try {
        const auto t0 = std::chrono::steady_clock::now();
        std::uint64_t executed = 0;
        while (!cancelled && executed < config.quantumChunks &&
               s->engine->step()) {
            ++executed;
            cancelled = s->cancelRequested.load();
        }
        exhausted = s->engine->exhausted();
        wall = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
        telemetry = serializeTelemetry(*s);
        if (cancelled || exhausted) {
            std::vector<core::ExperimentResult> results =
                s->engine->finish();
            const core::ExperimentResult &result = results.front();
            stats = sessionStatsJson(result);
            ts = sessionTimeseriesJson(result);
            // The journaled copy gets a per-session stats prefix so
            // `tps_report --campaign` can merge many sessions without
            // name collisions; the wire Result keeps the canonical
            // "session" prefix the byte-identity gate compares.
            obs::StatRegistry registry;
            result.exportTo(registry,
                            "session-" + std::to_string(s->id));
            std::ostringstream os;
            registry.writeJson(os);
            os << '\n';
            journal_stats = os.str();
            workload_name = result.workload;
            result_refs = result.refs;
            result_instructions = result.instructions;
            result_cpi = result.cpiTlb;
        }
    } catch (const std::exception &e) {
        failure = e.what();
    }

    {
        std::lock_guard<std::mutex> lock(mutex);
        s->replayedRefs = s->engine->replayedRefs();
        s->measuredRefs = s->engine->measuredRefs();
        s->chunks = s->engine->chunksExecuted();
        s->wallSeconds += wall;
        if (!telemetry.empty())
            s->pendingTelemetry.push_back(std::move(telemetry));
        if (!failure.empty()) {
            s->state = SessionState::Failed;
            s->failure = failure;
        } else if (cancelled || exhausted) {
            s->resultStats = std::move(stats);
            s->journalStats = std::move(journal_stats);
            s->resultTs = std::move(ts);
            s->workloadName = workload_name;
            s->resultRefs = result_refs;
            s->resultInstructions = result_instructions;
            s->resultCpi = result_cpi;
            s->state = exhausted && !cancelled
                           ? SessionState::Done
                           : (s->evicted ? SessionState::Evicted
                                         : SessionState::Cancelled);
        } else {
            s->state = SessionState::Queued;
        }
    }
    wakeup(s->id);
}

/** New interval rows since the last quantum, as one Telemetry payload
 *  ("" when none).  Worker thread; reads only its own engine. */
std::string
Server::Impl::serializeTelemetry(Session &s)
{
    const obs::TimeSeriesRecorder *recorder = s.engine->recorder(0);
    if (recorder == nullptr)
        return "";
    const std::vector<obs::IntervalRow> &rows = recorder->intervals();
    if (rows.size() <= s.tsSent)
        return "";
    std::ostringstream os;
    obs::JsonWriter w(os, false);
    w.beginObject();
    w.key("session_id").value(s.id);
    w.key("counter_names").beginArray();
    for (const std::string &name : recorder->counterNames())
        w.value(name);
    w.endArray();
    w.key("value_names").beginArray();
    for (const std::string &name : recorder->valueNames())
        w.value(name);
    w.endArray();
    w.key("rows").beginArray();
    for (std::size_t i = s.tsSent; i < rows.size(); ++i) {
        const obs::IntervalRow &row = rows[i];
        w.beginObject();
        w.key("start").value(row.startRef);
        w.key("refs").value(row.refs);
        w.key("counters").beginArray();
        for (const std::uint64_t c : row.counters)
            w.value(c);
        w.endArray();
        w.key("values").beginArray();
        for (const double v : row.values)
            w.value(v);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.finish();
    s.tsSent = rows.size();
    return os.str();
}

/** Loop thread, via the wake pipe: requeue or finalize. */
void
Server::Impl::onTaskNotify(std::uint64_t id)
{
    auto s = findSession(id);
    if (s == nullptr)
        return;
    SessionState state;
    {
        std::lock_guard<std::mutex> lock(mutex);
        state = s->state;
    }
    if (state == SessionState::Queued) {
        if (!stopFlag->load(std::memory_order_relaxed))
            submitQuantum(s);
    } else if (isTerminal(state)) {
        finalizeSession(s);
    }
}

/** Loop thread: count, journal, and arm the retention timer that
 *  eventually frees an unclaimed terminal session. */
void
Server::Impl::finalizeSession(const std::shared_ptr<Session> &s)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        switch (s->state) {
        case SessionState::Done:
            ++counters.done;
            break;
        case SessionState::Cancelled:
            ++counters.cancelled;
            break;
        case SessionState::Evicted:
            ++counters.evicted;
            break;
        case SessionState::Failed:
            ++counters.failed;
            break;
        default:
            break;
        }
        s->streamedBytes = 0;
        if (!s->journaled)
            journalSessionLocked(*s);
    }
    wheel.schedule(s->id, nowSteadyMs() + config.idleTimeoutMs);
}

void
Server::Impl::onIdleExpire(std::uint64_t id)
{
    auto s = findSession(id);
    if (s == nullptr)
        return;
    bool erase = false;
    bool cancel = false;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (isTerminal(s->state)) {
            erase = true; // unclaimed result outlived its retention
        } else if (s->state == SessionState::Receiving) {
            s->state = SessionState::Evicted;
            ++counters.evicted;
            erase = true;
        } else {
            // Running/queued but unattended: cancel the engine; the
            // quantum in flight turns it into an Evicted session with
            // partial results, which finalizeSession then journals.
            s->evicted = true;
            s->cancelRequested.store(true);
            cancel = true;
        }
        if (erase)
            sessions.erase(id);
    }
    if (cancel)
        wheel.schedule(id, nowSteadyMs() + config.idleTimeoutMs);
}

void
Server::Impl::touch(std::uint64_t id)
{
    wheel.schedule(id, nowSteadyMs() + config.idleTimeoutMs);
}

std::string
Server::Impl::statusJsonLocked(const Session &s,
                               bool result_follows) const
{
    std::ostringstream os;
    obs::JsonWriter w(os, false);
    w.beginObject();
    w.key("session_id").value(s.id);
    w.key("state").value(stateName(s.state));
    w.key("replayed_refs").value(s.replayedRefs);
    w.key("measured_refs").value(s.measuredRefs);
    w.key("chunks").value(s.chunks);
    // True only when a Result frame follows THIS Status in the same
    // reply.  Only Poll replies ever carry one; a TraceDone or Cancel
    // reply must say false even if the session already finished (a
    // fast run can beat the reply to the mutex), or the client hangs
    // waiting for a frame that never comes — poll again instead.
    w.key("has_result").value(result_follows);
    w.key("error").value(s.failure);
    w.endObject();
    w.finish();
    return os.str();
}

// ----------------------------------------------------------- artifacts

/** Write the per-session dumps and append the journal record (mutex
 *  held by the caller).  IO failures are reported, not fatal: the
 *  daemon keeps serving even when its status dir fills up. */
void
Server::Impl::journalSessionLocked(Session &s)
{
    s.journaled = true;
    if (journal == nullptr || s.resultStats.empty())
        return;
    const std::string key = "session-" + std::to_string(s.id);
    const std::string stats_file = key + ".stats.json";
    const std::string ts_file =
        s.resultTs.empty() ? "" : key + ".ts.json";
    std::string error;
    if (!obs::atomicWriteFile(config.statusDir + "/" + stats_file,
                              s.journalStats, error)) {
        std::fprintf(stderr, "tpsd: %s\n", error.c_str());
        return;
    }
    if (!ts_file.empty() &&
        !obs::atomicWriteFile(config.statusDir + "/" + ts_file,
                              s.resultTs, error))
        std::fprintf(stderr, "tpsd: %s\n", error.c_str());
    obs::CampaignCellRecord record;
    record.key = key;
    record.workload = s.workloadName;
    record.config = s.spec.tlb.describe();
    record.refs = s.resultRefs;
    record.instructions = s.resultInstructions;
    record.cpiTlb = s.resultCpi;
    record.wallSeconds = s.wallSeconds;
    record.statsFile = stats_file;
    record.timeseriesFile = ts_file;
    try {
        journal->append(record);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tpsd: journal: %s\n", e.what());
    }
}

obs::Heartbeat
Server::Impl::buildHeartbeat(const std::string &state)
{
    obs::Heartbeat hb;
    hb.state = state;
    hb.configHash = "tpsd";
    hb.timestampUtc = obs::RunManifest::currentTimestampUtc();
    hb.hostname = hostname;
    hb.pid = static_cast<std::uint64_t>(::getpid());
    hb.uptimeSeconds =
        static_cast<double>(nowSteadyMs() - startedMs) / 1000.0;
    hb.workers = pool != nullptr ? pool->size() : 0;

    std::lock_guard<std::mutex> lock(mutex);
    hb.cellsTotal = counters.admitted;
    for (const auto &[id, s] : sessions) {
        if (isTerminal(s->state)) {
            ++hb.cellsDone;
            hb.refsDone += s->replayedRefs;
            continue;
        }
        if (s->state == SessionState::Running)
            ++hb.workersBusy;
        obs::HeartbeatCell cell;
        cell.key = "session-" + std::to_string(id);
        cell.workload =
            s->spec.streamTrace ? "stream" : s->spec.workload;
        cell.config = s->spec.tlb.describe();
        cell.elapsedSeconds =
            static_cast<double>(nowSteadyMs() - s->admittedAtMs) /
            1000.0;
        hb.inFlight.push_back(std::move(cell));
    }
    // Sessions already reaped by the retention timer still count.
    const std::uint64_t reaped_done =
        counters.done + counters.cancelled + counters.evicted +
        counters.failed;
    if (reaped_done > hb.cellsDone)
        hb.cellsDone = reaped_done;
    return hb;
}

void
Server::Impl::writeHeartbeat(const std::string &state)
{
    if (heartbeat == nullptr)
        return;
    const obs::Heartbeat hb = buildHeartbeat(state);
    std::string error;
    if (!heartbeat->write(hb, error))
        std::fprintf(stderr, "tpsd: %s\n", error.c_str());
}

// ---------------------------------------------------------------- HTTP

void
Server::Impl::handleHttp(Conn &conn)
{
    const std::size_t end = conn.httpBuf.find("\r\n\r\n");
    if (end == std::string::npos)
        return; // request incomplete
    {
        std::lock_guard<std::mutex> lock(mutex);
        ++counters.httpRequests;
    }
    conn.closeAfterFlush = true;

    const std::size_t line_end = conn.httpBuf.find("\r\n");
    std::istringstream line(conn.httpBuf.substr(0, line_end));
    std::string method;
    std::string path;
    line >> method >> path;
    if (method != "GET") {
        conn.out += httpResponse(405, "Method Not Allowed",
                                 "<h1>405</h1>\n");
        return;
    }
    if (path == "/" || path == "/report" || path == "/report/") {
        conn.out += httpResponse(200, "OK", renderIndex());
        return;
    }
    const std::string prefix = "/report/";
    if (path.compare(0, prefix.size(), prefix) == 0) {
        const std::string tail = path.substr(prefix.size());
        char *parse_end = nullptr;
        const std::uint64_t id =
            std::strtoull(tail.c_str(), &parse_end, 10);
        if (parse_end != tail.c_str() && *parse_end == '\0') {
            std::string html;
            if (renderSession(id, html)) {
                conn.out += httpResponse(200, "OK", html);
                return;
            }
            conn.out += httpResponse(
                404, "Not Found",
                "<h1>404</h1><p>no finished session with that id</p>\n");
            return;
        }
    }
    conn.out += httpResponse(404, "Not Found", "<h1>404</h1>\n");
}

std::string
Server::Impl::httpResponse(int code, const std::string &reason,
                           const std::string &body) const
{
    std::ostringstream os;
    os << "HTTP/1.1 " << code << ' ' << reason << "\r\n"
       << "Content-Type: text/html; charset=utf-8\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
    return os.str();
}

std::string
Server::Impl::renderIndex()
{
    namespace report = obs::report;
    std::ostringstream os;
    report::writePageHead(os, "tpsd sessions");
    os << "<table>\n<tr><th>session</th><th>state</th>"
          "<th>workload</th><th>replayed refs</th>"
          "<th>report</th></tr>\n";
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto &[id, s] : sessions) {
        os << "<tr><td>session-" << id << "</td><td>"
           << stateName(s->state) << "</td><td>"
           << report::htmlEscape(s->spec.streamTrace ? "stream"
                                                     : s->spec.workload)
           << "</td><td>" << s->replayedRefs << "</td><td>";
        if (isTerminal(s->state) && !s->resultStats.empty())
            os << "<a href=\"/report/" << id << "\">report</a>";
        os << "</td></tr>\n";
    }
    os << "</table>\n";
    report::writePageFoot(os);
    return os.str();
}

/** Render one finished session's report (the page `tps_report` would
 *  write for the same stats/timeseries documents). */
bool
Server::Impl::renderSession(std::uint64_t id, std::string &html)
{
    std::string stats;
    std::string ts;
    std::string state;
    {
        std::lock_guard<std::mutex> lock(mutex);
        const auto it = sessions.find(id);
        if (it == sessions.end())
            return false;
        const Session &s = *it->second;
        if (!isTerminal(s.state) || s.resultStats.empty())
            return false;
        stats = s.resultStats;
        ts = s.resultTs;
        state = stateName(s.state);
    }

    namespace report = obs::report;
    std::ostringstream os;
    try {
        report::writePageHead(os, "tpsd session report");
        os << "<p class=\"dim\">session-" << id << " &mdash; " << state
           << "</p>\n";
        const obs::JsonValue doc = obs::parseJson(stats);
        report::writeStatsSections(os, doc);
        if (!ts.empty()) {
            const obs::JsonValue tsdoc = obs::parseJson(ts);
            if (const obs::JsonValue *cells = tsdoc.find("cells"))
                for (const auto &[key, cell] : cells->object)
                    report::writeTimeSeriesCell(os, key, cell);
        }
        report::writePageFoot(os);
    } catch (const std::exception &) {
        return false;
    }
    html = os.str();
    return true;
}

// ------------------------------------------------------- Server facade

Server::Server(ServerConfig config) : impl_(std::make_unique<Impl>())
{
    impl_->config = std::move(config);
    impl_->stopFlag = &stop_;
}

Server::~Server() = default;

bool
Server::start(std::string &error)
{
    return impl_->start(error, port_);
}

void
Server::run()
{
    impl_->runLoop();
}

void
Server::stop()
{
    stop_.store(true);
    impl_->wakeup(0);
}

void
Server::journalPartialAndFlush(int signo)
{
    (void)signo;
    std::lock_guard<std::mutex> lock(impl_->mutex);
    // Same pragmatic tradeoff obs/signal_flush.h documents: this runs
    // IO and takes locks on a signal path; the journal and heartbeat
    // stay uncorruptible because their commits are atomic renames.
    for (auto &[id, s] : impl_->sessions)
        if (isTerminal(s->state) && !s->journaled)
            impl_->journalSessionLocked(*s);
    if (impl_->heartbeat != nullptr) {
        obs::Heartbeat hb;
        hb.state = "interrupted";
        hb.configHash = "tpsd";
        hb.timestampUtc = obs::RunManifest::currentTimestampUtc();
        hb.hostname = impl_->hostname;
        hb.pid = static_cast<std::uint64_t>(::getpid());
        hb.uptimeSeconds =
            static_cast<double>(nowSteadyMs() - impl_->startedMs) /
            1000.0;
        hb.cellsTotal = impl_->counters.admitted;
        for (const auto &[id, s] : impl_->sessions) {
            if (isTerminal(s->state)) {
                ++hb.cellsDone;
                continue;
            }
            obs::HeartbeatCell cell;
            cell.key = "session-" + std::to_string(id);
            cell.workload =
                s->spec.streamTrace ? "stream" : s->spec.workload;
            cell.config = s->spec.tlb.describe();
            hb.inFlight.push_back(std::move(cell));
        }
        std::string error;
        impl_->heartbeat->write(hb, error);
    }
}

void
Server::exportStats(obs::StatRegistry &registry) const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto &c = impl_->counters;
    registry.addCounter("net.conns_accepted", c.connsAccepted);
    registry.addCounter("net.frames_in", c.framesIn);
    registry.addCounter("net.frames_out", c.framesOut);
    registry.addCounter("net.bytes_in", c.bytesIn);
    registry.addCounter("net.bytes_out", c.bytesOut);
    registry.addCounter("net.malformed_frames", c.malformedFrames);
    registry.addCounter("net.sessions_admitted", c.admitted);
    registry.addCounter("net.sessions_rejected", c.rejected);
    registry.addCounter("net.sessions_done", c.done);
    registry.addCounter("net.sessions_cancelled", c.cancelled);
    registry.addCounter("net.sessions_failed", c.failed);
    registry.addCounter("net.sessions_evicted", c.evicted);
    registry.addCounter("net.http_requests", c.httpRequests);
}

std::size_t
Server::sessionCount() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->sessions.size();
}

} // namespace tps::net
