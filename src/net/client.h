/**
 * @file
 * Blocking tps-wire-v1 client: what `tps_submit` (and the loopback
 * tests) use to talk to tpsd.  One Client is one connection; the
 * session id returned by submit() is a capability that stays valid
 * across connections, so a client may disconnect and poll again later
 * from a fresh Client.
 *
 * Every call either succeeds or returns false with @p error set; a
 * server-side Error frame surfaces as a failed call with the server's
 * message.  Not thread-safe — one thread per Client.
 */

#ifndef TPS_NET_CLIENT_H_
#define TPS_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/spec.h"
#include "net/wire.h"

namespace tps::net
{

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** TCP-connect to @p host:@p port and run the Hello handshake. */
    bool connect(const std::string &host, std::uint16_t port,
                 std::string &error);

    bool connected() const { return fd_ >= 0; }
    void close();

    /** Outcome of submit(): admission, not transport. */
    struct SubmitReply
    {
        bool accepted = false;
        std::uint64_t sessionId = 0;
        /** Rejection detail (admission control). */
        std::string reason;
        std::uint64_t retryAfterMs = 0;
    };

    /** Submit @p spec; false only on transport/protocol failure —
     *  an admission rejection is a successful call with
     *  out.accepted == false. */
    bool submit(const SessionSpec &spec, SubmitReply &out,
                std::string &error);

    /** Upload a streamed trace (chunked internally), then TraceDone.
     *  The engine starts once the server acknowledges. */
    bool sendTrace(std::uint64_t session,
                   const std::vector<MemRef> &refs, std::string &error);

    /** One Poll round-trip. */
    struct PollReply
    {
        std::string state; ///< receiving|queued|running|done|...
        std::uint64_t replayedRefs = 0;
        std::uint64_t measuredRefs = 0;
        std::uint64_t chunks = 0;
        std::string sessionError; ///< session failure detail ("" ok)
        /** Telemetry frame payloads drained by this poll. */
        std::vector<std::string> telemetry;
        /** Final stats document; non-empty once the run finished. */
        std::string resultStats;
    };

    bool poll(std::uint64_t session, PollReply &out,
              std::string &error);

    /** Request cancellation (the session turns terminal with partial
     *  results shortly; poll() to collect them). */
    bool cancel(std::uint64_t session, PollReply &out,
                std::string &error);

  private:
    bool sendAll(const std::string &bytes, std::string &error);
    bool readFrame(Frame &out, std::string &error);
    bool readStatusReply(PollReply &out, std::string &error);

    int fd_ = -1;
    FrameParser parser_;
};

/**
 * Minimal HTTP/1.1 GET against tpsd's report endpoint.  Returns false
 * with @p error set on transport failure or a non-200 status; the
 * response body lands in @p body.
 */
bool httpGet(const std::string &host, std::uint16_t port,
             const std::string &path, std::string &body,
             std::string &error);

} // namespace tps::net

#endif // TPS_NET_CLIENT_H_
