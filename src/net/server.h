/**
 * @file
 * tpsd's engine: a poll(2) event loop multiplexing tps-wire-v1
 * connections, experiment sessions scheduled in quanta onto
 * util::ThreadPool, admission control, timewheel-driven idle
 * eviction, live heartbeat/journal publication and a plain-HTTP
 * /report endpoint (DESIGN.md §14).
 *
 * Threading: the event-loop thread (the caller of run()) owns the
 * sockets, the timewheel and all admission/eviction decisions.  One
 * pool task at a time advances a session's core::ExperimentSession by
 * `quantumChunks` chunks and serializes that session's new telemetry
 * and (on exhaustion) its final stats itself — workers touch only
 * their own session's engine, so the loop and the workers share
 * nothing but the small snapshot fields guarded by one mutex.
 * Completion is posted back to the loop over a self-pipe, which is
 * also how stop() and cross-thread wakeups work.
 *
 * Sessions outlive connections: a client may disconnect after Submit
 * and poll again later from a new connection — sessions are evicted
 * only by the idle timewheel or by shutdown, which is what makes a
 * submitted experiment resumable from the client's point of view.
 */

#ifndef TPS_NET_SERVER_H_
#define TPS_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "net/spec.h"
#include "net/timewheel.h"
#include "net/wire.h"
#include "obs/stat_registry.h"

namespace tps::util
{
class ThreadPool;
}

namespace tps::net
{

struct ServerConfig
{
    /** Bind address; loopback by default — tpsd serves a machine, not
     *  a network, until someone consciously widens this. */
    std::string bindAddress = "127.0.0.1";

    /** TCP port; 0 = ephemeral (the test harness reads port()). */
    std::uint16_t port = 0;

    /** Worker threads advancing sessions. */
    unsigned workers = 2;

    /** Chunks one pool task advances a session before requeueing it —
     *  the fairness quantum (chunk size comes from each spec). */
    std::uint64_t quantumChunks = 64;

    // ---- admission control ----
    /** Concurrently admitted sessions (receiving + queued + running). */
    std::size_t maxSessions = 4;

    /** Cap on streamed trace bytes held across live sessions. */
    std::uint64_t maxQueuedTraceBytes = 64u << 20;

    /**
     * Throttle on the total predicted references (sum of admitted
     * sessions' remaining max_refs); 0 disables.  The hint a Rejected
     * frame carries is retryAfterMs.
     */
    std::uint64_t maxInflightRefs = 0;

    std::uint64_t retryAfterMs = 250;

    // ---- lifecycle ----
    /** Evict a session untouched by any client frame for this long. */
    std::uint64_t idleTimeoutMs = 60'000;

    /** Heartbeat + journal + per-session dumps; "" disables. */
    std::string statusDir;

    std::uint64_t heartbeatIntervalMs = 1000;
};

class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, open the self-pipe, spawn the pool.  False with
     *  @p error set on any socket failure. */
    bool start(std::string &error);

    /** The bound port (after start(); resolves port 0). */
    std::uint16_t port() const { return port_; }

    /** The event loop; returns after stop().  Call from one thread. */
    void run();

    /** Ask the loop to exit (any thread; idempotent). */
    void stop();

    /**
     * Signal-flush path (SIGINT/SIGTERM via obs::installSignalFlush):
     * publish a state="interrupted" heartbeat and journal every live
     * session's partial progress, so an interrupted daemon leaves the
     * same readable artifacts an interrupted campaign does.  Not a
     * clean shutdown — the process _Exit()s right after.
     */
    void journalPartialAndFlush(int signo);

    /** Daemon counters under "net.*" (feature-gated registry keys). */
    void exportStats(obs::StatRegistry &registry) const;

    /** Live session count (tests). */
    std::size_t sessionCount() const;

  private:
    struct Conn;
    struct Session;
    struct Impl;

    std::unique_ptr<Impl> impl_;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
};

} // namespace tps::net

#endif // TPS_NET_SERVER_H_
