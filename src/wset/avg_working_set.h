/**
 * @file
 * Exact average working-set size for static page sizes, many
 * (page size, T) combinations in a single trace pass.
 *
 * Implements the Slutz-Traiger identity [SlT74] the paper's modified
 * tycho used: with W(t,T) the set of pages referenced in (t-T, t], a
 * page referenced at times t_1 < ... < t_m is in W(t,T) for exactly
 *     sum_i min(t_{i+1} - t_i, T)  +  min(k - t_m + 1, T)
 * of the k reference times, so the average working set size
 *     s(T) = (1/k) * sum_t |W(t,T)|
 * needs only each page's previous reference time — O(1) work per
 * reference per configuration and "very few counters", exactly the
 * property the paper exploited to reach T = 100 million.
 */

#ifndef TPS_WSET_AVG_WORKING_SET_H_
#define TPS_WSET_AVG_WORKING_SET_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/types.h"

namespace tps
{

/**
 * Multi-configuration average working-set analyzer.
 *
 * Feed every reference once via observe(); read results after
 * finish().  Results are in *bytes* (the paper's working set size is
 * the sum of page sizes, Section 3.2).
 */
class AvgWorkingSet
{
  public:
    /**
     * @param size_log2s page-size exponents to evaluate
     * @param windows    working-set parameters T, in references
     */
    AvgWorkingSet(std::vector<unsigned> size_log2s,
                  std::vector<RefTime> windows);

    /** Account one reference (reference time auto-increments). */
    void observe(Addr vaddr);

    /** Close all open intervals.  Must be called exactly once. */
    void finish();

    /** Average working-set size in bytes for (size index, window index). */
    double averageBytes(std::size_t size_idx, std::size_t window_idx) const;

    /** Distinct pages touched for size index (footprint). */
    std::uint64_t distinctPages(std::size_t size_idx) const;

    const std::vector<unsigned> &sizes() const { return size_log2s_; }
    const std::vector<RefTime> &windows() const { return windows_; }
    RefTime refs() const { return now_; }

  private:
    struct PerSize
    {
        std::unordered_map<Addr, RefTime> lastRef; // vpn -> time
        std::vector<std::uint64_t> acc;            // one per window
    };

    std::vector<unsigned> size_log2s_;
    std::vector<RefTime> windows_;
    std::vector<PerSize> per_size_;
    RefTime now_ = 0;
    bool finished_ = false;
};

} // namespace tps

#endif // TPS_WSET_AVG_WORKING_SET_H_
