/**
 * @file
 * Exact incremental working-set tracker over a sliding reference
 * window, for *dynamic* page-size assignment.
 *
 * The gap-based analyzer (avg_working_set.h) requires a page's
 * identity to be stable over time, which the two-page-size policy
 * violates: a chunk's blocks stop being pages when the chunk is
 * promoted.  This tracker instead maintains the multiset of page
 * identities referenced in the last T references directly, so w(t) is
 * available at every t for any classification stream.
 *
 * Approximation note (documented in DESIGN.md): window occurrences
 * recorded before a promotion keep the identity they were classified
 * with until they age out of the window, mirroring what an OS's
 * time-of-access accounting would have recorded.
 */

#ifndef TPS_WSET_WINDOWED_WORKING_SET_H_
#define TPS_WSET_WINDOWED_WORKING_SET_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "util/types.h"
#include "vm/page.h"

namespace tps
{

/** Sliding-window working-set tracker over classified pages. */
class WindowedWorkingSet
{
  public:
    /** @param window the working-set parameter T, in references. */
    explicit WindowedWorkingSet(RefTime window);

    /**
     * Account one reference classified as @p page.
     * Also accumulates w(t) into the running average.
     */
    void observe(const PageId &page);

    /** Current working-set size w(t) in bytes. */
    std::uint64_t currentBytes() const { return current_bytes_; }

    /** Number of distinct pages currently in the window. */
    std::size_t currentPages() const { return counts_.size(); }

    /** Average of w(t) over all references observed so far. */
    double averageBytes() const;

    RefTime refs() const { return now_; }
    RefTime window() const { return window_; }

    void reset();

  private:
    void expireOld();

    RefTime window_;
    RefTime now_ = 0;
    std::deque<PageId> occurrences_; ///< last `window_` classifications
    std::unordered_map<PageId, std::uint32_t, PageIdHash> counts_;
    std::uint64_t current_bytes_ = 0;
    /** Sum of w(t) over t; fits 64 bits for any realistic run
     *  (2^64 bytes-refs ~ 10^10 refs at 1GB working sets). */
    std::uint64_t total_bytes_ = 0;
};

} // namespace tps

#endif // TPS_WSET_WINDOWED_WORKING_SET_H_
