#include "wset/avg_working_set.h"

#include <algorithm>

#include "util/logging.h"

namespace tps
{

AvgWorkingSet::AvgWorkingSet(std::vector<unsigned> size_log2s,
                             std::vector<RefTime> windows)
    : size_log2s_(std::move(size_log2s)), windows_(std::move(windows))
{
    if (size_log2s_.empty() || windows_.empty())
        tps_fatal("AvgWorkingSet needs at least one size and one window");
    for (RefTime window : windows_)
        if (window == 0)
            tps_fatal("working-set window must be positive");
    per_size_.resize(size_log2s_.size());
    for (auto &per : per_size_)
        per.acc.assign(windows_.size(), 0);
}

void
AvgWorkingSet::observe(Addr vaddr)
{
    if (finished_)
        tps_panic("observe() after finish()");
    ++now_;
    for (std::size_t s = 0; s < size_log2s_.size(); ++s) {
        PerSize &per = per_size_[s];
        const Addr vpn = vaddr >> size_log2s_[s];
        auto [it, inserted] = per.lastRef.try_emplace(vpn, now_);
        if (!inserted) {
            const RefTime gap = now_ - it->second;
            for (std::size_t w = 0; w < windows_.size(); ++w)
                per.acc[w] += std::min<RefTime>(gap, windows_[w]);
            it->second = now_;
        }
    }
}

void
AvgWorkingSet::finish()
{
    if (finished_)
        tps_panic("finish() called twice");
    finished_ = true;
    for (PerSize &per : per_size_) {
        for (const auto &[vpn, last] : per.lastRef) {
            const RefTime tail = now_ - last + 1;
            for (std::size_t w = 0; w < windows_.size(); ++w)
                per.acc[w] += std::min<RefTime>(tail, windows_[w]);
        }
    }
}

double
AvgWorkingSet::averageBytes(std::size_t size_idx,
                            std::size_t window_idx) const
{
    if (!finished_)
        tps_panic("averageBytes() before finish()");
    if (now_ == 0)
        return 0.0;
    const double page_bytes = static_cast<double>(
        std::uint64_t{1} << size_log2s_.at(size_idx));
    return static_cast<double>(per_size_.at(size_idx).acc.at(window_idx)) *
           page_bytes / static_cast<double>(now_);
}

std::uint64_t
AvgWorkingSet::distinctPages(std::size_t size_idx) const
{
    return per_size_.at(size_idx).lastRef.size();
}

} // namespace tps
