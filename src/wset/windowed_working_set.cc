#include "wset/windowed_working_set.h"

#include "util/logging.h"

namespace tps
{

WindowedWorkingSet::WindowedWorkingSet(RefTime window) : window_(window)
{
    if (window == 0)
        tps_fatal("working-set window must be positive");
}

void
WindowedWorkingSet::expireOld()
{
    while (occurrences_.size() > window_) {
        const PageId old = occurrences_.front();
        occurrences_.pop_front();
        auto it = counts_.find(old);
        if (it == counts_.end())
            tps_panic("window accounting out of sync");
        if (--it->second == 0) {
            current_bytes_ -= old.sizeBytes();
            counts_.erase(it);
        }
    }
}

void
WindowedWorkingSet::observe(const PageId &page)
{
    ++now_;
    occurrences_.push_back(page);
    auto [it, inserted] = counts_.try_emplace(page, 0);
    if (it->second == 0)
        current_bytes_ += page.sizeBytes();
    ++it->second;
    expireOld();
    total_bytes_ += current_bytes_;
}

double
WindowedWorkingSet::averageBytes() const
{
    return now_ == 0 ? 0.0
                     : static_cast<double>(total_bytes_) /
                           static_cast<double>(now_);
}

void
WindowedWorkingSet::reset()
{
    now_ = 0;
    occurrences_.clear();
    counts_.clear();
    current_bytes_ = 0;
    total_bytes_ = 0;
}

} // namespace tps
