#include "wset/two_size_working_set.h"

#include "util/logging.h"

namespace tps
{

TwoSizeWorkingSet::TwoSizeWorkingSet(const TwoSizeConfig &config)
    : config_(config), threshold_(config.resolvedPromote()),
      blocks_per_chunk_(config.blocksPerChunk())
{
    if (blocks_per_chunk_ > kMaxBlocksPerChunk)
        tps_fatal("size ratio exceeds supported blocks per chunk");
    if (config.window == 0)
        tps_fatal("working-set window must be positive");
}

std::uint64_t
TwoSizeWorkingSet::contribution(std::uint32_t active_blocks) const
{
    if (active_blocks >= threshold_)
        return std::uint64_t{1} << config_.largeLog2;
    return std::uint64_t{active_blocks} << config_.smallLog2;
}

void
TwoSizeWorkingSet::expireOld()
{
    while (touches_.size() > config_.window) {
        const Touch old = touches_.front();
        touches_.pop_front();
        auto it = chunks_.find(old.chunk);
        if (it == chunks_.end())
            tps_panic("chunk window accounting out of sync");
        ChunkWindow &window = it->second;
        const std::uint64_t before = contribution(window.activeBlocks);
        if (--window.blockTouches[old.block] == 0) {
            const bool was_large = window.activeBlocks >= threshold_;
            --window.activeBlocks;
            const bool is_large = window.activeBlocks >= threshold_;
            if (was_large && !is_large)
                --large_chunks_;
            current_bytes_ -= before;
            current_bytes_ += contribution(window.activeBlocks);
            if (window.activeBlocks == 0)
                chunks_.erase(it);
        }
    }
}

void
TwoSizeWorkingSet::observe(Addr vaddr)
{
    ++now_;
    const Addr chunk_number = vaddr >> config_.largeLog2;
    const std::uint8_t block = static_cast<std::uint8_t>(
        (vaddr >> config_.smallLog2) & (blocks_per_chunk_ - 1));

    ChunkWindow &window = chunks_[chunk_number];
    if (window.blockTouches[block]++ == 0) {
        const std::uint64_t before = contribution(window.activeBlocks);
        const bool was_large = window.activeBlocks >= threshold_;
        ++window.activeBlocks;
        const bool is_large = window.activeBlocks >= threshold_;
        if (!was_large && is_large)
            ++large_chunks_;
        current_bytes_ -= before;
        current_bytes_ += contribution(window.activeBlocks);
    }
    touches_.push_back(Touch{chunk_number, block});

    expireOld();
    total_bytes_ += current_bytes_;
}

double
TwoSizeWorkingSet::averageBytes() const
{
    return now_ == 0 ? 0.0
                     : static_cast<double>(total_bytes_) /
                           static_cast<double>(now_);
}

void
TwoSizeWorkingSet::reset()
{
    now_ = 0;
    touches_.clear();
    chunks_.clear();
    current_bytes_ = 0;
    total_bytes_ = 0;
    large_chunks_ = 0;
}

} // namespace tps
