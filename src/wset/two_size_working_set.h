/**
 * @file
 * Exact average working-set size under the paper's two-page-size
 * assignment (Sections 3.2 + 3.4), evaluated by definition:
 *
 *   At reference time t, a chunk with at least `threshold` blocks
 *   touched in (t-T, t] is mapped as one large page (contributing the
 *   large page size); any other chunk contributes the small page size
 *   for each of its blocks touched in (t-T, t].
 *
 * Unlike the generic WindowedWorkingSet — which records the
 * classification chosen at access time and therefore double-counts a
 * chunk while its pre-promotion small-page occurrences age out — this
 * analyzer re-evaluates the assignment from the chunk's *current*
 * in-window block population at every t, which is exactly the
 * quantity the paper's Figure 4.2 plots.
 */

#ifndef TPS_WSET_TWO_SIZE_WORKING_SET_H_
#define TPS_WSET_TWO_SIZE_WORKING_SET_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "util/types.h"
#include "vm/two_size_policy.h"

namespace tps
{

/** Sliding-window two-size working-set analyzer. */
class TwoSizeWorkingSet
{
  public:
    /**
     * @param config chunk geometry, threshold and window T.  The
     *               demotion setting is irrelevant: assignment is
     *               re-derived from the window at every reference.
     */
    explicit TwoSizeWorkingSet(const TwoSizeConfig &config);

    /** Account one reference; w(t) accumulates into the average. */
    void observe(Addr vaddr);

    /** Current working-set size w(t) in bytes. */
    std::uint64_t currentBytes() const { return current_bytes_; }

    /** Average of w(t) over all references so far. */
    double averageBytes() const;

    /** Chunks currently mapped large / small-with-blocks. */
    std::size_t largeChunks() const { return large_chunks_; }

    RefTime refs() const { return now_; }

    void reset();

  private:
    struct ChunkWindow
    {
        /** Touches of each block currently inside the window. */
        std::uint32_t blockTouches[kMaxBlocksPerChunk] = {};
        std::uint32_t activeBlocks = 0;
    };

    struct Touch
    {
        Addr chunk;
        std::uint8_t block;
    };

    /** Bytes chunk contributes given its active-block count. */
    std::uint64_t contribution(std::uint32_t active_blocks) const;

    void expireOld();

    TwoSizeConfig config_;
    unsigned threshold_;
    unsigned blocks_per_chunk_;
    RefTime now_ = 0;
    std::deque<Touch> touches_; ///< youngest at back, one per ref
    std::unordered_map<Addr, ChunkWindow> chunks_;
    std::uint64_t current_bytes_ = 0;
    std::uint64_t total_bytes_ = 0;
    std::size_t large_chunks_ = 0;
};

} // namespace tps

#endif // TPS_WSET_TWO_SIZE_WORKING_SET_H_
