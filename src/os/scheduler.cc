#include "os/scheduler.h"

#include <algorithm>

#include "util/logging.h"

namespace tps::os
{

const char *
switchModeName(SwitchMode mode)
{
    switch (mode) {
      case SwitchMode::Flush:
        return "flush";
      case SwitchMode::Tagged:
        return "tagged";
      case SwitchMode::TaggedLimit:
        return "tagged+limit";
    }
    tps_panic("unreachable switch mode");
}

SwitchMode
parseSwitchMode(const std::string &text)
{
    if (text == "flush")
        return SwitchMode::Flush;
    if (text == "tagged")
        return SwitchMode::Tagged;
    if (text == "tagged+limit")
        return SwitchMode::TaggedLimit;
    tps_fatal("unknown switch mode '", text,
              "' (expected flush, tagged, or tagged+limit)");
}

Scheduler::Scheduler(const SchedulerConfig &config,
                     std::vector<ProcessSlot> slots)
    : config_(config), slots_(std::move(slots)),
      delivered_(slots_.size(), 0), runnable_(slots_.size(), true)
{
    if (slots_.empty())
        tps_fatal("Scheduler needs at least one process");
    if (config_.quantumRefs == 0)
        tps_fatal("Scheduler quantum must be positive");
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].weight == 0)
            tps_fatal("process ", i, " has zero scheduling weight");
    }
}

std::optional<Quantum>
Scheduler::nextQuantum()
{
    const std::size_t n = slots_.size();
    for (std::size_t step = 0; step < n; ++step) {
        const std::size_t candidate = (cursor_ + step) % n;
        if (!runnable_[candidate])
            continue;
        Quantum quantum;
        quantum.process = candidate;
        quantum.sliceRefs =
            slots_[candidate].weight * config_.quantumRefs;
        if (slots_[candidate].budgetRefs != 0) {
            const std::uint64_t left =
                slots_[candidate].budgetRefs - delivered_[candidate];
            quantum.sliceRefs = std::min(quantum.sliceRefs, left);
        }
        quantum.switched = last_ != SIZE_MAX && last_ != candidate;
        if (quantum.switched)
            ++switches_;
        last_ = candidate;
        cursor_ = (candidate + 1) % n;
        return quantum;
    }
    return std::nullopt;
}

void
Scheduler::accountRun(std::size_t process, std::uint64_t ran,
                      bool drained)
{
    delivered_[process] += ran;
    if (drained)
        runnable_[process] = false;
    if (slots_[process].budgetRefs != 0 &&
        delivered_[process] >= slots_[process].budgetRefs)
        runnable_[process] = false;
}

AsidManager::AsidManager(SwitchMode mode, std::uint16_t hw_asids,
                         std::size_t processes)
    : mode_(mode), hw_asids_(hw_asids)
{
    if (mode_ == SwitchMode::TaggedLimit) {
        if (hw_asids_ == 0)
            tps_fatal("tagged+limit needs at least one hardware ASID");
        tag_of_.assign(processes, 0);
        slot_owner_.assign(hw_asids_, SIZE_MAX);
        slot_last_.assign(hw_asids_, 0);
    }
}

std::uint16_t
AsidManager::activate(std::size_t process, bool switched, Tlb &tlb)
{
    switch (mode_) {
      case SwitchMode::Flush:
        // An untagged TLB holds only the running process's entries;
        // tag 0 throughout, paying a full flush per switch instead.
        if (switched) {
            tlb.invalidateAll();
            ++switch_flushes_;
        }
        tlb.setAsid(0);
        return 0;
      case SwitchMode::Tagged:
        // Unbounded tag space: the process id is its ASID forever.
        tlb.setAsid(static_cast<std::uint16_t>(process));
        return static_cast<std::uint16_t>(process);
      case SwitchMode::TaggedLimit:
        break;
    }

    ++tick_;
    if (tag_of_[process] != 0) {
        const std::uint16_t tag =
            static_cast<std::uint16_t>(tag_of_[process] - 1);
        slot_last_[tag] = tick_;
        tlb.setAsid(tag);
        return tag;
    }
    // Claim a free tag, else recycle the least-recently-activated one
    // (flushing its surviving entries — the recycling cost the mode
    // exists to measure).
    std::uint16_t tag = 0;
    bool found = false;
    for (std::uint16_t i = 0; i < hw_asids_; ++i) {
        if (slot_owner_[i] == SIZE_MAX) {
            tag = i;
            found = true;
            break;
        }
    }
    if (!found) {
        tag = 0;
        for (std::uint16_t i = 1; i < hw_asids_; ++i) {
            if (slot_last_[i] < slot_last_[tag])
                tag = i;
        }
        tlb.invalidateAsid(tag);
        ++recycles_;
        tag_of_[slot_owner_[tag]] = 0;
    }
    slot_owner_[tag] = process;
    slot_last_[tag] = tick_;
    tag_of_[process] = static_cast<std::uint32_t>(tag) + 1;
    tlb.setAsid(tag);
    return tag;
}

} // namespace tps::os
