/**
 * @file
 * Deterministic round-robin scheduler and ASID management for the
 * multiprogrammed machine (core::runMultiprogExperiment).
 *
 * The paper's traces are uniprogrammed, so its miss ratios never pay
 * for context switches.  This models the three ways real hardware
 * handles the TLB across a switch:
 *
 *  - flush:        untagged TLB; every context switch empties it
 *                  (VAX/i386 style).  Charged as invalidations.
 *  - tagged:       unbounded ASID space; entries of all processes
 *                  compete for capacity but survive switches
 *                  (the MIPS R4000 ideal with enough tag bits).
 *  - tagged+limit: a bounded hardware tag file.  When all tags are
 *                  in use, activating an untagged process recycles
 *                  the least-recently-activated tag and flushes just
 *                  that tag's entries (Tlb::invalidateAsid) — how
 *                  real OSes run more processes than ASID bits allow.
 *
 * Everything is deterministic: dispatch order is round-robin over the
 * runnable set, quantum lengths are weight multiples of a fixed ref
 * count, and tag recycling breaks ties by activation order.
 */

#ifndef TPS_OS_SCHEDULER_H_
#define TPS_OS_SCHEDULER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tlb/tlb.h"

namespace tps::os
{

/** TLB handling across a context switch (see file comment). */
enum class SwitchMode : std::uint8_t
{
    Flush,       ///< invalidateAll() on every switch
    Tagged,      ///< unbounded ASIDs; entries survive switches
    TaggedLimit, ///< bounded hardware tags with recycling flushes
};

const char *switchModeName(SwitchMode mode);

/** Parse "flush" | "tagged" | "tagged+limit" (fatal otherwise). */
SwitchMode parseSwitchMode(const std::string &text);

/** Scheduler knobs. */
struct SchedulerConfig
{
    /** References a weight-1 process runs per dispatch. */
    std::uint64_t quantumRefs = 50'000;

    SwitchMode switchMode = SwitchMode::Tagged;

    /** Hardware tag-file size for TaggedLimit (>= 1); ignored by the
     *  other modes.  Fewer tags than processes forces recycling. */
    std::uint16_t hwAsids = 2;
};

/** Per-process scheduling parameters. */
struct ProcessSlot
{
    /** Quantum multiplier: this process runs weight * quantumRefs
     *  references per dispatch. */
    std::uint64_t weight = 1;

    /** Total references this process may retire; 0 = unlimited (runs
     *  until its trace drains or the experiment's maxRefs is hit). */
    std::uint64_t budgetRefs = 0;
};

/** One dispatch decision. */
struct Quantum
{
    std::size_t process = 0;
    /** References to deliver this dispatch (weight * quantumRefs,
     *  clamped to the process's remaining budget). */
    std::uint64_t sliceRefs = 0;
    /** True when this dispatch switches away from a different
     *  previously-running process (the first dispatch is not a
     *  switch, and neither is re-dispatching the sole survivor). */
    bool switched = false;
};

/**
 * Deterministic weighted round-robin over a fixed process set.
 * Processes leave the runnable set when their trace drains or their
 * budget is spent; the run ends when none remain (or the driver's
 * global maxRefs is reached).
 */
class Scheduler
{
  public:
    Scheduler(const SchedulerConfig &config,
              std::vector<ProcessSlot> slots);

    /** Next dispatch, or nullopt when no process is runnable. */
    std::optional<Quantum> nextQuantum();

    /**
     * Report the outcome of the last dispatch: @p ran references were
     * actually delivered; @p drained marks the trace as exhausted
     * (ran < slice also implies it, but the driver knows directly).
     */
    void accountRun(std::size_t process, std::uint64_t ran,
                    bool drained);

    std::uint64_t contextSwitches() const { return switches_; }
    std::size_t processCount() const { return slots_.size(); }
    bool runnable(std::size_t process) const
    {
        return runnable_[process];
    }

  private:
    SchedulerConfig config_;
    std::vector<ProcessSlot> slots_;
    std::vector<std::uint64_t> delivered_;
    std::vector<bool> runnable_;
    std::size_t cursor_ = 0;               ///< next index to consider
    std::size_t last_ = SIZE_MAX;          ///< last dispatched process
    std::uint64_t switches_ = 0;
};

/**
 * Maps processes to hardware ASID tags per SwitchMode and applies the
 * per-switch TLB actions (flush / tag switch / recycling flush).
 */
class AsidManager
{
  public:
    AsidManager(SwitchMode mode, std::uint16_t hw_asids,
                std::size_t processes);

    /**
     * Make @p process the active context on @p tlb.  @p switched is
     * the Quantum::switched bit; flush mode only flushes on actual
     * switches.  Returns the hardware tag now active.
     */
    std::uint16_t activate(std::size_t process, bool switched,
                           Tlb &tlb);

    /** invalidateAll() calls issued by flush mode. */
    std::uint64_t switchFlushes() const { return switch_flushes_; }
    /** invalidateAsid() recycling flushes issued by tagged+limit. */
    std::uint64_t recycleFlushes() const { return recycles_; }

  private:
    SwitchMode mode_;
    std::uint16_t hw_asids_;
    /** process -> tag + 1 (0 = no tag held); TaggedLimit only. */
    std::vector<std::uint32_t> tag_of_;
    /** tag -> owning process (SIZE_MAX = free); TaggedLimit only. */
    std::vector<std::size_t> slot_owner_;
    /** tag -> activation tick of last use (recycling order). */
    std::vector<std::uint64_t> slot_last_;
    std::uint64_t tick_ = 0;
    std::uint64_t switch_flushes_ = 0;
    std::uint64_t recycles_ = 0;
};

} // namespace tps::os

#endif // TPS_OS_SCHEDULER_H_
