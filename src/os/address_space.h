/**
 * @file
 * One process's view of memory in a multiprogrammed machine.
 *
 * The paper's traces are uniprogrammed (Sections 3.1/6) and it flags
 * that as the main threat to its conclusions.  This class supplies the
 * per-process half of the multiprogramming model: each process keeps
 * its *native* virtual addresses (two processes may both touch vaddr
 * 0x1000 — distinguishing them is exactly what the TLB's ASID tag is
 * for), owns its own page-size policy state and forward page tables,
 * and mints physical frames from the one machine-wide
 * phys::MemoryModel it shares with every other process.
 *
 * Shared-model key bias: the physical memory model indexes backing
 * state by (vpn, chunk) numbers, so identical virtual pages of
 * different processes must not collide there.  Every key handed to the
 * shared model is offset by `id << (kPhysBiasLog2 - sizeLog2)` —
 * equivalent to placing process i's address space at
 * `i << kPhysBiasLog2` in a single global virtual space.  Only the
 * phys-model keys are biased; the TLB and the policy see native
 * addresses.
 */

#ifndef TPS_OS_ADDRESS_SPACE_H_
#define TPS_OS_ADDRESS_SPACE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "phys/memory_model.h"
#include "trace/trace_source.h"
#include "vm/page_table.h"
#include "vm/policy.h"

namespace tps::os
{

/** log2 of the per-process slice in the global (biased) key space.
 *  48 bits clears every workload footprint by orders of magnitude. */
inline constexpr unsigned kPhysBiasLog2 = 48;

/** Per-process address space: trace + policy + page tables + biased
 *  access to the shared physical memory model. */
class AddressSpace : public phys::Allocator
{
  public:
    /**
     * @param id     process index; doubles as the ASID in tagged mode
     *               and as the phys-key bias slot
     * @param trace  the process's reference stream (caller-owned)
     * @param policy the process's own page-size policy (its promotion
     *               state must not be shared across processes)
     * @param model_page_tables build per-process forward page tables
     *               and route their pfns through the shared allocator
     */
    AddressSpace(std::uint16_t id, std::string name, TraceSource &trace,
                 std::unique_ptr<PageSizePolicy> policy,
                 bool model_page_tables);

    std::uint16_t id() const { return id_; }
    const std::string &name() const { return name_; }
    TraceSource &trace() { return trace_; }
    PageSizePolicy &policy() { return *policy_; }
    const PageSizePolicy &policy() const { return *policy_; }

    /** This process's page tables; nullptr unless modeled. */
    tps::AddressSpace *pageTables() { return tables_.get(); }

    unsigned smallLog2() const { return small_log2_; }
    unsigned largeLog2() const { return large_log2_; }

    /** Attach the machine-wide physical memory model (may be null);
     *  page-table pfns then come from it, biased per process. */
    void setPhysModel(phys::MemoryModel *model);
    phys::MemoryModel *physModel() const { return phys_; }

    /** The page's identity in the global (biased) key space — distinct
     *  across processes even for equal native PageIds. */
    PageId globalPage(const PageId &page) const;

    /** Record first-touch backing for a missed page (no-op without a
     *  shared model attached). */
    void touchPhys(const PageId &page);

    /** Mirror a promotion/demotion of a native chunk number into the
     *  shared model (no-op without a model). */
    void remapPhysChunk(Addr chunk, bool to_large);

    /** phys::Allocator — page tables mint pfns here; the native vpn is
     *  biased before the shared model sees it. */
    Addr frameFor(Addr vpn, unsigned size_log2) override;

    /** Rewind for a fresh run: trace and policy reset, page tables
     *  rebuilt empty (their allocator attachment is kept). */
    void reset();

  private:
    Addr biasedVpn(Addr vpn, unsigned size_log2) const
    {
        return vpn + (static_cast<Addr>(id_)
                      << (kPhysBiasLog2 - size_log2));
    }

    void rebuildTables();

    std::uint16_t id_;
    std::string name_;
    TraceSource &trace_;
    std::unique_ptr<PageSizePolicy> policy_;
    unsigned small_log2_;
    unsigned large_log2_;
    bool model_page_tables_;
    std::unique_ptr<tps::AddressSpace> tables_;
    phys::MemoryModel *phys_ = nullptr;
};

} // namespace tps::os

#endif // TPS_OS_ADDRESS_SPACE_H_
