#include "os/address_space.h"

#include "util/logging.h"
#include "vm/two_size_policy.h"

namespace tps::os
{

AddressSpace::AddressSpace(std::uint16_t id, std::string name,
                           TraceSource &trace,
                           std::unique_ptr<PageSizePolicy> policy,
                           bool model_page_tables)
    : id_(id), name_(std::move(name)), trace_(trace),
      policy_(std::move(policy)), model_page_tables_(model_page_tables)
{
    if (!policy_)
        tps_fatal("os::AddressSpace '", name_, "' needs a policy");
    // Small/large exponents mirror runExperiment's derivation: a
    // single-size policy walks only the "small" table, so pair it with
    // an unused larger size.
    if (const auto *policy2 =
            dynamic_cast<const TwoSizePolicy *>(policy_.get())) {
        small_log2_ = policy2->config().smallLog2;
        large_log2_ = policy2->config().largeLog2;
    } else if (const auto *policy1 =
                   dynamic_cast<const SingleSizePolicy *>(
                       policy_.get())) {
        small_log2_ = policy1->sizeLog2();
        large_log2_ = policy1->sizeLog2() + 3;
    } else {
        tps_fatal("multiprogramming supports single- and two-size "
                  "policies only (got ", policy_->name(), ")");
    }
    if (large_log2_ >= kPhysBiasLog2)
        tps_fatal("page size 2^", large_log2_,
                  " does not fit below the per-process bias 2^",
                  kPhysBiasLog2);
    rebuildTables();
}

void
AddressSpace::rebuildTables()
{
    if (!model_page_tables_) {
        tables_.reset();
        return;
    }
    tables_ = std::make_unique<tps::AddressSpace>(small_log2_,
                                                  large_log2_);
    if (phys_ != nullptr)
        tables_->setAllocator(this);
}

void
AddressSpace::setPhysModel(phys::MemoryModel *model)
{
    phys_ = model;
    if (tables_)
        tables_->setAllocator(phys_ != nullptr ? this : nullptr);
}

PageId
AddressSpace::globalPage(const PageId &page) const
{
    PageId global = page;
    global.vpn = biasedVpn(page.vpn, page.sizeLog2);
    return global;
}

void
AddressSpace::touchPhys(const PageId &page)
{
    if (phys_ != nullptr)
        phys_->touch(biasedVpn(page.vpn, page.sizeLog2), page.sizeLog2);
}

void
AddressSpace::remapPhysChunk(Addr chunk, bool to_large)
{
    if (phys_ == nullptr)
        return;
    const Addr biased =
        chunk + (static_cast<Addr>(id_) << (kPhysBiasLog2 - large_log2_));
    if (to_large)
        phys_->promoteChunk(biased);
    else
        phys_->demoteChunk(biased);
}

Addr
AddressSpace::frameFor(Addr vpn, unsigned size_log2)
{
    if (phys_ == nullptr)
        tps_fatal("os::AddressSpace::frameFor without a phys model");
    return phys_->frameFor(biasedVpn(vpn, size_log2), size_log2);
}

void
AddressSpace::reset()
{
    trace_.reset();
    policy_->reset();
    rebuildTables();
}

} // namespace tps::os
