#include "walk/walk.h"

#include <algorithm>

#include "util/logging.h"

namespace tps::walk
{

WalkStats
WalkStats::deltaSince(const WalkStats &since) const
{
    WalkStats delta;
    delta.walks = walks - since.walks;
    delta.walksLarge = walksLarge - since.walksLarge;
    delta.levelsTouched = levelsTouched - since.levelsTouched;
    delta.levelAccesses = levelAccesses - since.levelAccesses;
    delta.pwcLookups = pwcLookups - since.pwcLookups;
    delta.pwcHits = pwcHits - since.pwcHits;
    delta.pwcEvictions = pwcEvictions - since.pwcEvictions;
    delta.cycles = cycles - since.cycles;
    return delta;
}

void
WalkStats::exportTo(obs::StatRegistry &registry,
                    const std::string &prefix) const
{
    registry.addCounter(prefix + ".walks", walks);
    registry.addCounter(prefix + ".walks_large", walksLarge);
    registry.addCounter(prefix + ".levels_touched", levelsTouched);
    registry.addCounter(prefix + ".level_accesses", levelAccesses);
    registry.addCounter(prefix + ".pwc_lookups", pwcLookups);
    registry.addCounter(prefix + ".pwc_hits", pwcHits);
    registry.addCounter(prefix + ".pwc_evictions", pwcEvictions);
    registry.addCounter(prefix + ".cycles", cycles);
    registry.addValue(prefix + ".levels_per_walk", levelsPerWalk());
    registry.addValue(prefix + ".accesses_per_walk",
                      accessesPerWalk());
    registry.addValue(prefix + ".pwc_hit_rate", pwcHitRate());
}

PageWalker::PageWalker(const WalkConfig &config) : config_(config)
{
    if (config_.levels < 2)
        tps_fatal("walk model needs at least 2 levels, got ",
                  config_.levels);
    if (config_.levels > 7)
        tps_fatal("walk model supports at most 7 levels (packed PWC "
                  "keys), got ", config_.levels);
    if (config_.bitsPerLevel == 0)
        tps_fatal("walk model needs bitsPerLevel > 0");
    if (config_.pwcEntries != 0) {
        ways_ = std::min<std::size_t>(
            std::max<std::size_t>(config_.pwcWays, 1),
            config_.pwcEntries);
        sets_ = std::max<std::size_t>(config_.pwcEntries / ways_, 1);
        pwc_.assign(sets_ * ways_, PwcEntry{});
    }
}

void
PageWalker::reset()
{
    std::fill(pwc_.begin(), pwc_.end(), PwcEntry{});
    clock_ = 0;
    stats_ = WalkStats{};
}

std::size_t
PageWalker::setOf(std::uint64_t key) const
{
    // Fixed multiplicative hash (deterministic across runs/platforms):
    // spreads sequential prefixes so a strided walk does not pile into
    // one set.
    const std::uint64_t mixed = key * 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>((mixed >> 32) % sets_);
}

bool
PageWalker::pwcProbe(std::uint64_t key)
{
    PwcEntry *set = pwc_.data() + setOf(key) * ways_;
    for (std::size_t w = 0; w < ways_; ++w) {
        if (set[w].key == key) {
            set[w].lastUse = clock_;
            return true;
        }
    }
    return false;
}

void
PageWalker::pwcInsert(std::uint64_t key)
{
    PwcEntry *set = pwc_.data() + setOf(key) * ways_;
    std::size_t victim = 0;
    for (std::size_t w = 0; w < ways_; ++w) {
        if (set[w].key == key) {
            set[w].lastUse = clock_;
            return;
        }
        if (set[w].key == 0) {
            victim = w;
            break;
        }
        if (set[w].lastUse < set[victim].lastUse)
            victim = w;
    }
    if (set[victim].key != 0)
        ++stats_.pwcEvictions;
    set[victim].key = key;
    set[victim].lastUse = clock_;
}

unsigned
PageWalker::walk(Addr vaddr, unsigned size_log2)
{
    ++clock_;
    ++stats_.walks;
    const bool large = size_log2 >= config_.largeLeafLog2;
    if (large)
        ++stats_.walksLarge;

    // Leaf level: 1 for a small page; a large leaf lives one table up.
    const unsigned leaf = large ? 2 : 1;
    stats_.levelsTouched += config_.levels - leaf + 1;

    // The walk starts at the root unless the PWC holds an entry on
    // this path; the deepest cached entry (smallest level above the
    // leaf) skips every access at and above its level.
    unsigned start = config_.levels;
    if (!pwc_.empty()) {
        ++stats_.pwcLookups;
        unsigned best = 0;
        for (unsigned level = leaf + 1;
             level <= config_.levels && best == 0; ++level) {
            const std::uint64_t key =
                (prefixOf(vaddr, level) << 3) | level;
            if (pwcProbe(key))
                best = level;
        }
        if (best != 0) {
            ++stats_.pwcHits;
            stats_.cycles += config_.pwcHitCycles;
            start = best - 1;
        }
    }

    const unsigned accesses = start - leaf + 1;
    stats_.levelAccesses += accesses;
    stats_.cycles +=
        static_cast<std::uint64_t>(config_.cyclesPerLevel) * accesses;

    // Refill: every non-leaf entry on the path is now known (the walk
    // read or skipped-via-cache each of them), so cache them all; a
    // re-insert of a resident key just refreshes its LRU stamp.
    if (!pwc_.empty()) {
        for (unsigned level = leaf + 1; level <= config_.levels;
             ++level) {
            pwcInsert((prefixOf(vaddr, level) << 3) | level);
        }
    }
    return accesses;
}

} // namespace tps::walk
