/**
 * @file
 * Structural page-walk modeling (DESIGN.md §15).
 *
 * The paper charges every TLB miss a flat constant (20 cycles, +25%
 * for two-size handlers — core/cpi_model.h) and admits the number is
 * a guess.  This subsystem makes the miss cost *emerge from
 * structure* instead: a radix page-table walk whose depth depends on
 * the page size of the missing translation, partially absorbed by a
 * small page-walk cache (PWC) over the non-leaf levels.
 *
 * The walker is a pure cost model: it never changes hit/miss
 * outcomes, fills or replacement decisions.  Its inputs are the
 * (vaddr, size) pairs of the miss stream a TLB already produced, so
 * batched and per-ref execution feed it identical sequences and its
 * counters — including the integer cycle total behind `cpi_walk` —
 * reconcile exactly at every chunk size (gated by tests/walk/).
 */

#ifndef TPS_WALK_WALK_H_
#define TPS_WALK_WALK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/stat_registry.h"
#include "vm/page.h"

namespace tps::walk
{

/**
 * Radix-walk shape and per-level costs.  The defaults model a 4-level
 * x86-64-style table (9 bits per level above a 4K leaf) costed so a
 * full walk lands exactly on the paper's 20-cycle constant
 * (4 levels x 5 cycles): the structural model and the flat model
 * agree on a PWC-less, all-small workload, and diverge only where
 * structure matters.
 */
struct WalkConfig
{
    /** Master switch (`--walk-model`): off keeps every output of an
     *  existing run byte-identical. */
    bool enabled = false;

    /** Radix depth: a small-page leaf walks this many levels. */
    unsigned levels = 4;

    /** Virtual-address bits consumed per non-leaf level. */
    unsigned bitsPerLevel = 9;

    /** Address bits below the deepest level index (4K leaf). */
    unsigned pageShift = 12;

    /**
     * Pages at least this large terminate the walk one level early:
     * their leaf entry lives in the next table up (the 32K/large leaf
     * of the paper's two-size policy walks 3 levels, not 4).
     */
    unsigned largeLeafLog2 = kLog2_32K;

    /** Memory-access cost per level touched (4 x 5 = the paper's 20). */
    unsigned cyclesPerLevel = 5;

    /** Page-walk cache: entries over non-leaf levels (0 = no PWC). */
    std::size_t pwcEntries = 16;

    /** PWC associativity (clamped to pwcEntries). */
    std::size_t pwcWays = 4;

    /** Cycles charged per PWC hit (the probe that skipped levels). */
    unsigned pwcHitCycles = 1;

    /**
     * Victim-TLB plumbing carried alongside the walk options so one
     * `StudyScale` knob set covers the whole mechanism axis
     * (`--victim-entries`): entries in the software victim array when
     * a bench builds a TlbOrganization::Victim config, and the
     * distinct latency its hits are charged in mechanism CPIs.  The
     * walker itself never reads these.
     */
    std::size_t victimEntries = 512;
    unsigned victimHitCycles = 8;
};

/** Everything a walker counts.  Cycles are integral on purpose: the
 *  reconciliation gate asserts cycles == cyclesPerLevel*levelAccesses
 *  + pwcHitCycles*pwcHits with no floating-point slack. */
struct WalkStats
{
    std::uint64_t walks = 0;      ///< TLB misses walked
    std::uint64_t walksLarge = 0; ///< walks that ended at a large leaf

    /** Structural depth: levels the table format requires per walk,
     *  before any PWC absorption (4K leaf: levels; large: levels-1). */
    std::uint64_t levelsTouched = 0;

    /** Memory accesses actually performed (post-PWC skips). */
    std::uint64_t levelAccesses = 0;

    std::uint64_t pwcLookups = 0;
    std::uint64_t pwcHits = 0;
    std::uint64_t pwcEvictions = 0; ///< valid PWC entries displaced

    /** Total cycles charged (the integer behind cpi_walk). */
    std::uint64_t cycles = 0;

    double
    levelsPerWalk() const
    {
        return walks == 0 ? 0.0
                          : static_cast<double>(levelsTouched) /
                                static_cast<double>(walks);
    }

    double
    accessesPerWalk() const
    {
        return walks == 0 ? 0.0
                          : static_cast<double>(levelAccesses) /
                                static_cast<double>(walks);
    }

    double
    pwcHitRate() const
    {
        return pwcLookups == 0 ? 0.0
                               : static_cast<double>(pwcHits) /
                                     static_cast<double>(pwcLookups);
    }

    /** Counter deltas since @p since (interval telemetry; every field
     *  is this-minus-since, like TlbStats::deltaSince). */
    WalkStats deltaSince(const WalkStats &since) const;

    /** Register every counter under "<prefix>." plus derived rates. */
    void exportTo(obs::StatRegistry &registry,
                  const std::string &prefix) const;
};

/**
 * The radix walker with its page-walk cache.  One instance per
 * experiment cell: the miss stream is TLB-dependent, so the walker's
 * state is too.
 *
 * The PWC is set-associative LRU over (level, vaddr-prefix) keys of
 * the *non-leaf* levels only — a cached level-k entry is the pointer
 * to the level-(k-1) table, so a hit at the deepest cached level
 * skips every access above it.  All structures are deterministic
 * (index is a fixed hash, LRU by a walker-local clock), so two
 * walkers fed the same miss sequence are byte-identical.
 */
class PageWalker
{
  public:
    explicit PageWalker(const WalkConfig &config);

    /**
     * Charge one TLB miss.  @p size_log2 is the page size of the
     * missing translation; at or above config.largeLeafLog2 the walk
     * terminates one level early.
     * @return memory accesses performed (post-PWC).
     */
    unsigned walk(Addr vaddr, unsigned size_log2);

    /** Zero the counters, keep PWC contents (warmup boundary). */
    void resetStats() { stats_ = WalkStats{}; }

    /** Clear PWC contents and counters (run start). */
    void reset();

    const WalkStats &stats() const { return stats_; }
    const WalkConfig &config() const { return config_; }

  private:
    struct PwcEntry
    {
        std::uint64_t key = 0; ///< (prefix << 3) | level; 0 = invalid
        std::uint64_t lastUse = 0;
    };

    /** Level-k table prefix of @p vaddr (the walk-path identity of
     *  the level-k entry). */
    std::uint64_t
    prefixOf(Addr vaddr, unsigned level) const
    {
        return static_cast<std::uint64_t>(vaddr) >>
               (config_.pageShift +
                config_.bitsPerLevel * (level - 1));
    }

    std::size_t setOf(std::uint64_t key) const;
    bool pwcProbe(std::uint64_t key);
    void pwcInsert(std::uint64_t key);

    WalkConfig config_;
    std::size_t ways_ = 0;
    std::size_t sets_ = 0;
    std::vector<PwcEntry> pwc_; ///< sets_ x ways_, row-major
    std::uint64_t clock_ = 0;
    WalkStats stats_;
};

} // namespace tps::walk

#endif // TPS_WALK_WALK_H_
