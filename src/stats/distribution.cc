#include "stats/distribution.h"

#include <algorithm>
#include <cmath>

namespace tps::stats
{

void
Distribution::add(double sample)
{
    if (count_ == 0) {
        min_ = sample;
        max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    ++count_;
    const double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
}

double
Distribution::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
Distribution::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

double
Distribution::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

void
Distribution::reset()
{
    *this = Distribution{};
}

void
Distribution::merge(const Distribution &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

} // namespace tps::stats
