/**
 * @file
 * Running scalar distribution (mean / min / max / stddev) in O(1) space.
 */

#ifndef TPS_STATS_DISTRIBUTION_H_
#define TPS_STATS_DISTRIBUTION_H_

#include <cstdint>

namespace tps::stats
{

/**
 * Accumulates samples with Welford's algorithm so mean and variance are
 * numerically stable even for billions of samples.
 */
class Distribution
{
  public:
    void add(double sample);

    std::uint64_t count() const { return count_; }
    double mean() const { return mean_; }
    double min() const;
    double max() const;

    /** Population variance (0 for fewer than 2 samples). */
    double variance() const;
    double stddev() const;

    /** Sum of all samples. */
    double sum() const { return mean_ * static_cast<double>(count_); }

    void reset();

    /** Merge another distribution into this one (parallel-safe merge). */
    void merge(const Distribution &other);

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace tps::stats

#endif // TPS_STATS_DISTRIBUTION_H_
