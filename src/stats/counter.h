/**
 * @file
 * Simple named event counter.
 */

#ifndef TPS_STATS_COUNTER_H_
#define TPS_STATS_COUNTER_H_

#include <cstdint>

namespace tps::stats
{

/**
 * A monotonically increasing event counter.
 *
 * Deliberately minimal: simulators in this codebase bump counters on
 * every reference, so the hot path must compile to a single add.
 */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    /**
     * Ratio of this counter to @p denom; 0 when denom is 0.
     *
     * Note the 0/0 convention: "no events" reads as a 0.0 rate, which
     * table printers can mistake for a measured 0% (e.g. "no refs" as
     * "0% miss rate").  Callers that must distinguish the two should
     * use perOr() with a sentinel fallback (NaN renders as "-").
     */
    double
    per(std::uint64_t denom) const
    {
        return perOr(denom, 0.0);
    }

    /** Ratio of this counter to @p denom; @p fallback when denom is 0. */
    double
    perOr(std::uint64_t denom, double fallback) const
    {
        return denom == 0 ? fallback
                          : static_cast<double>(value_) /
                                static_cast<double>(denom);
    }

  private:
    std::uint64_t value_ = 0;
};

} // namespace tps::stats

#endif // TPS_STATS_COUNTER_H_
