#include "stats/table.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/logging.h"

namespace tps::stats
{

namespace
{

/** Heuristic: a cell that parses as a number gets right-aligned. */
bool
looksNumeric(const std::string &cell)
{
    if (cell.empty())
        return false;
    std::size_t i = 0;
    if (cell[i] == '-' || cell[i] == '+')
        ++i;
    bool saw_digit = false;
    for (; i < cell.size(); ++i) {
        const char c = cell[i];
        if (std::isdigit(static_cast<unsigned char>(c)))
            saw_digit = true;
        else if (c != '.' && c != ',' && c != '%' && c != 'x')
            return false;
    }
    return saw_digit;
}

} // namespace

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        tps_fatal("TextTable requires at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != headers_.size())
        tps_fatal("TextTable row has ", row.size(), " cells, expected ",
                  headers_.size());
    rows_.push_back(Row{false, std::move(row)});
}

void
TextTable::addRule()
{
    rows_.push_back(Row{true, {}});
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        if (row.rule)
            continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    auto print_cells = [&](const std::vector<std::string> &cells,
                           bool align_numeric) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const std::string &cell = cells[c];
            const std::size_t pad = widths[c] - cell.size();
            const bool right = align_numeric && looksNumeric(cell);
            os << (c == 0 ? "" : "  ");
            if (right)
                os << std::string(pad, ' ') << cell;
            else
                os << cell << std::string(pad, ' ');
        }
        os << '\n';
    };

    auto print_rule = [&] {
        std::size_t total = 0;
        for (std::size_t c = 0; c < widths.size(); ++c)
            total += widths[c] + (c == 0 ? 0 : 2);
        os << std::string(total, '-') << '\n';
    };

    print_cells(headers_, false);
    print_rule();
    for (const auto &row : rows_) {
        if (row.rule)
            print_rule();
        else
            print_cells(row.cells, true);
    }
}

std::string
TextTable::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace tps::stats
