#include "stats/csv.h"

#include "util/logging.h"

namespace tps::stats
{

CsvWriter::CsvWriter(std::ostream &os, std::vector<std::string> headers)
    : os_(os), columns_(headers.size())
{
    if (headers.empty())
        tps_fatal("CsvWriter requires at least one column");
    for (std::size_t i = 0; i < headers.size(); ++i)
        os_ << (i == 0 ? "" : ",") << quote(headers[i]);
    os_ << '\n';
}

void
CsvWriter::writeRow(const std::vector<std::string> &row)
{
    if (row.size() != columns_)
        tps_fatal("CSV row has ", row.size(), " fields, expected ",
                  columns_);
    for (std::size_t i = 0; i < row.size(); ++i)
        os_ << (i == 0 ? "" : ",") << quote(row[i]);
    os_ << '\n';
    ++rows_;
}

std::string
CsvWriter::quote(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out.push_back('"');
    return out;
}

} // namespace tps::stats
