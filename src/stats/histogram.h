/**
 * @file
 * Integer histograms: linear-bucket and log2-bucket variants.
 *
 * The stack simulator records stack-distance histograms (one bucket per
 * exact distance up to a bound, then an overflow bucket), from which
 * miss counts for every TLB size are derived in one pass.
 */

#ifndef TPS_STATS_HISTOGRAM_H_
#define TPS_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace tps::stats
{

/**
 * Histogram over exact integer values [0, bound); values >= bound land
 * in a single overflow bucket.
 */
class Histogram
{
  public:
    explicit Histogram(std::size_t bound);

    void add(std::uint64_t value, std::uint64_t weight = 1);

    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::uint64_t overflow() const { return overflow_; }
    std::size_t bound() const { return buckets_.size(); }

    /** Total weight across all buckets including overflow. */
    std::uint64_t total() const { return total_; }

    /**
     * Weight of samples with value >= @p threshold (overflow included).
     * For a stack-distance histogram this is exactly the number of
     * misses of a fully associative LRU buffer with @p threshold slots.
     */
    std::uint64_t tailAtLeast(std::uint64_t threshold) const;

    void reset();

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/** Histogram with power-of-two bucket boundaries: [0], [1], [2,3], [4,7].. */
class Log2Histogram
{
  public:
    /** @param max_log2 values >= 2^max_log2 share the last bucket. */
    explicit Log2Histogram(unsigned max_log2 = 40);

    void add(std::uint64_t value, std::uint64_t weight = 1);

    /** Number of buckets (= max_log2 + 2: zero bucket + one per octave). */
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::uint64_t total() const { return total_; }

    /** Lower bound of bucket @p i (0, 1, 2, 4, 8, ...). */
    std::uint64_t bucketFloor(std::size_t i) const;

    /** Weighted arithmetic mean using each sample's exact value. */
    double mean() const;

    void reset();

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
    double weighted_sum_ = 0.0;
};

} // namespace tps::stats

#endif // TPS_STATS_HISTOGRAM_H_
