#include "stats/histogram.h"

#include "util/bitops.h"

namespace tps::stats
{

Histogram::Histogram(std::size_t bound) : buckets_(bound, 0) {}

void
Histogram::add(std::uint64_t value, std::uint64_t weight)
{
    if (value < buckets_.size())
        buckets_[static_cast<std::size_t>(value)] += weight;
    else
        overflow_ += weight;
    total_ += weight;
}

std::uint64_t
Histogram::tailAtLeast(std::uint64_t threshold) const
{
    std::uint64_t tail = overflow_;
    for (std::size_t i = static_cast<std::size_t>(threshold);
         i < buckets_.size(); ++i)
        tail += buckets_[i];
    return tail;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    total_ = 0;
}

Log2Histogram::Log2Histogram(unsigned max_log2)
    : buckets_(static_cast<std::size_t>(max_log2) + 2, 0)
{
}

void
Log2Histogram::add(std::uint64_t value, std::uint64_t weight)
{
    std::size_t idx;
    if (value == 0)
        idx = 0;
    else
        idx = static_cast<std::size_t>(floorLog2(value)) + 1;
    if (idx >= buckets_.size())
        idx = buckets_.size() - 1;
    buckets_[idx] += weight;
    total_ += weight;
    weighted_sum_ += static_cast<double>(value) *
                     static_cast<double>(weight);
}

std::uint64_t
Log2Histogram::bucketFloor(std::size_t i) const
{
    return i == 0 ? 0 : (std::uint64_t{1} << (i - 1));
}

double
Log2Histogram::mean() const
{
    return total_ == 0 ? 0.0 : weighted_sum_ / static_cast<double>(total_);
}

void
Log2Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    total_ = 0;
    weighted_sum_ = 0.0;
}

} // namespace tps::stats
