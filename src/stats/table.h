/**
 * @file
 * ASCII table builder used by benches to print paper-style tables.
 */

#ifndef TPS_STATS_TABLE_H_
#define TPS_STATS_TABLE_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace tps::stats
{

/**
 * A column-aligned text table.
 *
 * Columns are declared up front; rows are appended as strings (callers
 * format numbers themselves so each table controls its precision, as
 * the paper's tables do).  Numeric-looking cells are right-aligned,
 * text cells left-aligned.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append a data row. @pre row.size() == number of headers */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal rule (rendered as dashes). */
    void addRule();

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return headers_.size(); }

    /** Render the table with a header rule to @p os. */
    void print(std::ostream &os) const;

    /** Render to a string (convenience for tests). */
    std::string toString() const;

  private:
    struct Row
    {
        bool rule = false;
        std::vector<std::string> cells;
    };

    std::vector<std::string> headers_;
    std::vector<Row> rows_;
};

} // namespace tps::stats

#endif // TPS_STATS_TABLE_H_
