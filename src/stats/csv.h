/**
 * @file
 * Minimal CSV emitter so experiment results can be post-processed with
 * external plotting tools (the figures in the paper are plots).
 */

#ifndef TPS_STATS_CSV_H_
#define TPS_STATS_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace tps::stats
{

/**
 * Streams rows of comma-separated values with proper quoting.
 * Writes the header on construction.
 */
class CsvWriter
{
  public:
    CsvWriter(std::ostream &os, std::vector<std::string> headers);

    /** Write one row. @pre row.size() == number of headers */
    void writeRow(const std::vector<std::string> &row);

    std::size_t rowsWritten() const { return rows_; }

    /** Quote one field per RFC 4180 (internal; exposed for tests). */
    static std::string quote(const std::string &field);

  private:
    std::ostream &os_;
    std::size_t columns_;
    std::size_t rows_ = 0;
};

} // namespace tps::stats

#endif // TPS_STATS_CSV_H_
