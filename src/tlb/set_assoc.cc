#include "tlb/set_assoc.h"

#include <algorithm>

#include "tlb/tlb_detail.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace tps
{

SetAssocTlb::SetAssocTlb(std::size_t entries, std::size_t ways,
                         IndexScheme scheme, unsigned small_log2,
                         unsigned large_log2, ReplPolicy policy,
                         std::uint64_t rng_seed)
    : entries_(entries), sets_(ways == 0 ? 0 : entries / ways),
      ways_(ways), scheme_(scheme), small_log2_(small_log2),
      large_log2_(large_log2), policy_(policy), rng_(rng_seed),
      rng_seed_(rng_seed)
{
    if (entries == 0 || ways == 0)
        tps_fatal("set-associative TLB needs entries > 0 and ways > 0");
    if (entries % ways != 0)
        tps_fatal("TLB entries (", entries, ") not divisible by ways (",
                  ways, ")");
    if (!isPow2(sets_))
        tps_fatal("number of sets (", sets_, ") must be a power of two");
    if (large_log2 <= small_log2)
        tps_fatal("large page must exceed small page");
    if (policy == ReplPolicy::TreePLRU &&
        (!isPow2(ways) || ways > 64)) {
        tps_fatal("tree-PLRU needs a power-of-two way count <= 64, "
                  "got ", ways);
    }
    index_bits_ = log2Exact(sets_);
    plru_.resize(sets_);
}

std::size_t
SetAssocTlb::indexFor(const PageId &page, Addr vaddr) const
{
    unsigned shift = 0;
    switch (scheme_) {
      case IndexScheme::SmallPage:
        shift = small_log2_;
        break;
      case IndexScheme::LargePage:
        shift = large_log2_;
        break;
      case IndexScheme::Exact:
        shift = page.sizeLog2;
        break;
    }
    return static_cast<std::size_t>((vaddr >> shift) & mask(index_bits_));
}

bool
SetAssocTlb::access(const PageId &page, Addr vaddr)
{
    ++clock_;
    const bool is_large = page.sizeLog2 >= large_log2_;
    const std::size_t set = indexFor(page, vaddr);
    TlbEntry *base = setBase(set);

    for (std::size_t way = 0; way < ways_; ++way) {
        if (base[way].matches(page, asid_)) {
            base[way].lastUse = clock_;
            if (policy_ == ReplPolicy::TreePLRU)
                plru_[set].touch(way, ways_);
            detail::recordOutcome(stats_, true, is_large);
            return true;
        }
    }

    detail::recordOutcome(stats_, false, is_large);
    const std::size_t victim =
        chooseVictim(base, ways_, policy_, rng_, plru_[set]);
    TlbEntry &slot = base[victim];
    if (slot.valid)
        ++stats_.evictions;
    slot.page = page;
    slot.asid = asid_;
    slot.valid = true;
    slot.lastUse = clock_;
    slot.inserted = clock_;
    if (policy_ == ReplPolicy::TreePLRU)
        plru_[set].touch(victim, ways_);
    ++stats_.fills;
    return false;
}

void
SetAssocTlb::invalidatePage(const PageId &page)
{
    // Under the SmallPage scheme a large page may be resident in
    // several sets (the pathology of Section 2.2), so a correct
    // shootdown must search the whole array.  Invalidations are rare
    // (only promotions/demotions), so the full scan is acceptable.
    for (TlbEntry &entry : entries_) {
        if (entry.matches(page, asid_)) {
            entry.valid = false;
            ++stats_.invalidations;
        }
    }
}

void
SetAssocTlb::invalidateAsid(std::uint16_t asid)
{
    for (TlbEntry &entry : entries_) {
        if (entry.valid && entry.asid == asid) {
            entry.valid = false;
            ++stats_.invalidations;
        }
    }
}

void
SetAssocTlb::invalidateAll()
{
    for (TlbEntry &entry : entries_) {
        if (entry.valid) {
            entry.valid = false;
            ++stats_.invalidations;
        }
    }
}

void
SetAssocTlb::reset()
{
    for (TlbEntry &entry : entries_)
        entry = TlbEntry{};
    clock_ = 0;
    stats_ = TlbStats{};
    rng_ = Rng(rng_seed_);
    std::fill(plru_.begin(), plru_.end(), PlruTree{});
    asid_ = 0;
}

std::string
SetAssocTlb::name() const
{
    return std::to_string(entries_.size()) + "-entry " +
           std::to_string(ways_) + "-way (" + indexSchemeName(scheme_) +
           ", " + replPolicyName(policy_) + ")";
}

std::size_t
SetAssocTlb::residentCopies(const PageId &page) const
{
    std::size_t count = 0;
    for (const TlbEntry &entry : entries_)
        count += entry.matches(page, asid_) ? 1 : 0;
    return count;
}

} // namespace tps
