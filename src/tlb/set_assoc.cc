#include "tlb/set_assoc.h"

#include <algorithm>

#include "tlb/tlb_detail.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace tps
{

SetAssocTlb::SetAssocTlb(std::size_t entries, std::size_t ways,
                         IndexScheme scheme, unsigned small_log2,
                         unsigned large_log2, ReplPolicy policy,
                         std::uint64_t rng_seed)
    : store_(entries), sets_(ways == 0 ? 0 : entries / ways),
      ways_(ways), scheme_(scheme), small_log2_(small_log2),
      large_log2_(large_log2), policy_(policy), rng_(rng_seed),
      rng_seed_(rng_seed)
{
    if (entries == 0 || ways == 0)
        tps_fatal("set-associative TLB needs entries > 0 and ways > 0");
    if (entries % ways != 0)
        tps_fatal("TLB entries (", entries, ") not divisible by ways (",
                  ways, ")");
    if (!isPow2(sets_))
        tps_fatal("number of sets (", sets_, ") must be a power of two");
    if (large_log2 <= small_log2)
        tps_fatal("large page must exceed small page");
    if (policy == ReplPolicy::TreePLRU &&
        (!isPow2(ways) || ways > 64)) {
        tps_fatal("tree-PLRU needs a power-of-two way count <= 64, "
                  "got ", ways);
    }
    index_bits_ = log2Exact(sets_);
    plru_.resize(sets_);
}

std::size_t
SetAssocTlb::indexFor(const PageId &page, Addr vaddr) const
{
    unsigned shift = 0;
    switch (scheme_) {
      case IndexScheme::SmallPage:
        shift = small_log2_;
        break;
      case IndexScheme::LargePage:
        shift = large_log2_;
        break;
      case IndexScheme::Exact:
        shift = page.sizeLog2;
        break;
    }
    return static_cast<std::size_t>((vaddr >> shift) & mask(index_bits_));
}

inline bool
SetAssocTlb::probeOne(const PageId &page, Addr vaddr)
{
    ++clock_;
    const bool is_large = page.sizeLog2 >= large_log2_;
    const std::size_t set = indexFor(page, vaddr);
    const std::size_t base = set * ways_;
    const std::uint32_t want_meta =
        detail::packMeta(asid_, page.sizeLog2);

    const long found =
        detail::soaFindMatch(store_, base, ways_, want_meta, page.vpn);
    if (found >= 0) {
        const auto way = static_cast<std::size_t>(found);
        store_.lastUse[base + way] = clock_;
        if (policy_ == ReplPolicy::TreePLRU)
            plru_[set].touch(way, ways_);
        detail::recordOutcome(stats_, true, is_large);
        return true;
    }

    detail::recordOutcome(stats_, false, is_large);
    const std::size_t victim = detail::soaChooseVictim(
        store_, base, ways_, policy_, rng_, plru_[set]);
    if (store_.valid(base + victim)) {
        ++stats_.evictions;
        if (events_ != nullptr) {
            // Dwell = probes the entry survived since its fill.
            events_->emit(evict_stream_, clock_,
                          store_.vpn[base + victim],
                          store_.meta[base + victim] & 0xff,
                          clock_ - store_.inserted[base + victim]);
        }
    }
    store_.fill(base + victim, page, asid_, clock_);
    if (policy_ == ReplPolicy::TreePLRU)
        plru_[set].touch(victim, ways_);
    ++stats_.fills;
    return false;
}

bool
SetAssocTlb::access(const PageId &page, Addr vaddr)
{
    return probeOne(page, vaddr);
}

void
SetAssocTlb::lookupBatch(const BatchRef *refs, std::size_t n,
                         BatchResult &out)
{
    out.hit.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        out.hit[i] = probeOne(refs[i].page, refs[i].vaddr) ? 1 : 0;
}

void
SetAssocTlb::invalidatePage(const PageId &page)
{
    // Under the SmallPage scheme a large page may be resident in
    // several sets (the pathology of Section 2.2), so a correct
    // shootdown must search the whole array.  Invalidations are rare
    // (only promotions/demotions), so the full scan is acceptable.
    const std::uint32_t want_meta =
        detail::packMeta(asid_, page.sizeLog2);
    for (std::size_t i = 0; i < store_.size(); ++i) {
        if (store_.meta[i] == want_meta && store_.vpn[i] == page.vpn) {
            store_.invalidate(i);
            ++stats_.invalidations;
        }
    }
}

void
SetAssocTlb::invalidateAsid(std::uint16_t asid)
{
    for (std::size_t i = 0; i < store_.size(); ++i) {
        if (store_.valid(i) && detail::metaAsid(store_.meta[i]) == asid) {
            store_.invalidate(i);
            ++stats_.invalidations;
        }
    }
}

void
SetAssocTlb::invalidateAll()
{
    for (std::size_t i = 0; i < store_.size(); ++i) {
        if (store_.valid(i)) {
            store_.invalidate(i);
            ++stats_.invalidations;
        }
    }
}

void
SetAssocTlb::reset()
{
    store_.clear();
    clock_ = 0;
    stats_ = TlbStats{};
    rng_ = Rng(rng_seed_);
    std::fill(plru_.begin(), plru_.end(), PlruTree{});
    asid_ = 0;
}

Tlb::ReachSnapshot
SetAssocTlb::reachSnapshot() const
{
    ReachSnapshot snap;
    snap.sets = sets_;
    snap.setOccupancy.assign(ways_ + 1, 0);
    for (std::size_t set = 0; set < sets_; ++set) {
        std::size_t valid = 0;
        for (std::size_t way = 0; way < ways_; ++way) {
            const std::size_t i = set * ways_ + way;
            if (!store_.valid(i))
                continue;
            ++valid;
            snap.reachBytes += std::uint64_t{1}
                               << (store_.meta[i] & 0xff);
        }
        ++snap.setOccupancy[valid];
        if (valid == ways_)
            ++snap.fullSets;
    }
    return snap;
}

void
SetAssocTlb::setEventSink(obs::EventLogRecorder *recorder,
                          const std::string &tag)
{
    events_ = recorder;
    if (recorder != nullptr) {
        evict_stream_ = recorder->stream(
            tag.empty() ? "tlb_evict" : "tlb_evict." + tag,
            {"vpn", "size_log2", "dwell"});
    }
}

std::string
SetAssocTlb::name() const
{
    return std::to_string(store_.size()) + "-entry " +
           std::to_string(ways_) + "-way (" + indexSchemeName(scheme_) +
           ", " + replPolicyName(policy_) + ")";
}

std::size_t
SetAssocTlb::residentCopies(const PageId &page) const
{
    const std::uint32_t want_meta =
        detail::packMeta(asid_, page.sizeLog2);
    std::size_t count = 0;
    for (std::size_t i = 0; i < store_.size(); ++i)
        count += (store_.meta[i] == want_meta &&
                  store_.vpn[i] == page.vpn)
                     ? 1
                     : 0;
    return count;
}

} // namespace tps
