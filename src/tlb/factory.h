/**
 * @file
 * Declarative TLB configuration and factory.
 */

#ifndef TPS_TLB_FACTORY_H_
#define TPS_TLB_FACTORY_H_

#include <memory>
#include <string>

#include "tlb/set_assoc.h"
#include "tlb/tlb.h"
#include "tlb/tlb_entry.h"

namespace tps
{

/** Overall TLB organization. */
enum class TlbOrganization : std::uint8_t
{
    FullyAssociative = 0,
    SetAssociative = 1,
    Split = 2,    ///< one sub-TLB per page size
    TwoLevel = 3, ///< FA L1 micro-TLB + FA L2 (entries = L2 size)
    Victim = 4,   ///< FA primary + software victim array
};

/**
 * Exact-index probe strategy (paper Section 2.2, options a/b/c).
 * Miss counts are identical across Parallel and Sequential; they
 * differ in per-access probe cost, which core::CpiModel charges.
 */
enum class ProbeStrategy : std::uint8_t
{
    Parallel = 0,   ///< dual-ported / replicated: both indexes at once
    Sequential = 1, ///< probe small index, reprobe with large on miss
};

/** Complete description of a TLB to simulate. */
struct TlbConfig
{
    TlbOrganization organization = TlbOrganization::FullyAssociative;
    std::size_t entries = 16;
    std::size_t ways = 2; ///< ignored for fully associative

    IndexScheme scheme = IndexScheme::Exact; ///< set-assoc only
    ProbeStrategy probe = ProbeStrategy::Parallel;

    unsigned smallLog2 = kLog2_4K;
    unsigned largeLog2 = kLog2_32K;

    ReplPolicy replacement = ReplPolicy::LRU;
    std::uint64_t rngSeed = 1;

    /**
     * Split organization: entries reserved for the large-page sub-TLB
     * (the rest go to the small sub-TLB).  Both sub-TLBs are fully
     * associative, matching the PA-RISC Block-TLB arrangement.
     */
    std::size_t splitLargeEntries = 4;

    /** TwoLevel organization: entries in the L1 micro-TLB. */
    std::size_t l1Entries = 4;

    /**
     * Victim organization: entries in the software victim array that
     * catches primary evictions (entries = primary size, as for
     * TwoLevel).
     */
    std::size_t victimEntries = 512;

    /** Short description, e.g. "32-entry 2-way exact-index". */
    std::string describe() const;
};

/** Build a TLB model; tps_fatal on inconsistent configuration. */
std::unique_ptr<Tlb> makeTlb(const TlbConfig &config);

} // namespace tps

#endif // TPS_TLB_FACTORY_H_
