/**
 * @file
 * Internal helpers shared by the TLB implementations.
 */

#ifndef TPS_TLB_TLB_DETAIL_H_
#define TPS_TLB_TLB_DETAIL_H_

#include "tlb/tlb.h"

namespace tps::detail
{

/**
 * Bump the access/hit/miss counters for one lookup.
 * @param is_large whether the reference's page is the larger size
 *                 (callers pass sizeLog2 comparison; single-size TLBs
 *                 pass false).
 */
void recordOutcome(TlbStats &stats, bool hit, bool is_large);

} // namespace tps::detail

#endif // TPS_TLB_TLB_DETAIL_H_
