/**
 * @file
 * Two-level TLB hierarchy.
 *
 * The paper's Section 1 argues a physically-tagged L1 cache caps how
 * large a (single-level) TLB can grow before it slows every memory
 * reference.  The design answer that later machines adopted is a
 * hierarchy: a tiny fully associative L1 ("micro-TLB", cf. the R4000's
 * ITLB) backed by a larger, slower L2.  This model composes any two
 * Tlb implementations, maintains (non-strict) inclusion on fills and
 * strict inclusion on invalidations, and reports the L1/L2 split so
 * the CPI model can charge an L2-hit latency instead of a full miss.
 */

#ifndef TPS_TLB_TWO_LEVEL_TLB_H_
#define TPS_TLB_TWO_LEVEL_TLB_H_

#include <memory>
#include <vector>

#include "tlb/tlb.h"

namespace tps
{

/** Extra counters specific to the hierarchy. */
struct TwoLevelStats
{
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;   ///< L1 miss, L2 hit (refill L1)
    std::uint64_t l2Misses = 0; ///< miss in both (software handler)
};

/** An L1 micro-TLB backed by a larger L2. */
class TwoLevelTlb : public Tlb
{
  public:
    TwoLevelTlb(std::unique_ptr<Tlb> l1, std::unique_ptr<Tlb> l2);

    /**
     * Hit means "did not reach the miss handler": an L2 hit refills
     * the L1 and still counts as a TLB hit at this interface; use
     * levelStats() to cost the L2-hit latency separately.
     */
    bool access(const PageId &page, Addr vaddr) override;

    void lookupBatch(const BatchRef *refs, std::size_t n,
                     BatchResult &out) override;

    void invalidatePage(const PageId &page) override;
    void invalidateAll() override;
    void invalidateAsid(std::uint16_t asid) override;
    void setAsid(std::uint16_t asid) override;
    void reset() override;
    void resetStats() override;
    std::size_t capacity() const override;
    const TlbStats &stats() const override;
    std::string name() const override;

    const TwoLevelStats &levelStats() const { return level_stats_; }
    const Tlb &l1() const { return *l1_; }
    const Tlb &l2() const { return *l2_; }

    /** The L2 defines the hierarchy's reach (capacity() precedent:
     *  inclusion makes the L1 a subset of it). */
    ReachSnapshot reachSnapshot() const override;

    /** Forwards with tags "l1"/"l2" (prefixed by @p tag). */
    void setEventSink(obs::EventLogRecorder *recorder,
                      const std::string &tag) override;

  private:
    std::unique_ptr<Tlb> l1_;
    std::unique_ptr<Tlb> l2_;
    TwoLevelStats level_stats_;
    TlbStats stats_;

    // lookupBatch() scratch: the L1-miss subsequence forwarded to L2.
    std::vector<BatchRef> l2_refs_;
    std::vector<std::uint32_t> l2_index_;
    BatchResult l1_result_;
    BatchResult l2_result_;
};

} // namespace tps

#endif // TPS_TLB_TWO_LEVEL_TLB_H_
