/**
 * @file
 * Victim selection shared by all associative TLB organizations.
 */

#ifndef TPS_TLB_REPLACEMENT_H_
#define TPS_TLB_REPLACEMENT_H_

#include <cstddef>
#include <cstdint>

#include "tlb/tlb_entry.h"
#include "util/random.h"

namespace tps
{

/**
 * Tree pseudo-LRU state for one set of up to 64 ways.
 *
 * A binary tree of (ways - 1) direction bits stored heap-style in one
 * word: node i's children are 2i+1 / 2i+2; the leaves are the ways.
 * Each bit points toward the pseudo-least-recently-used subtree, so
 * victim selection follows the bits down and a touch flips the bits
 * on the path to point away from the touched way — exactly the
 * hardware scheme.  Requires a power-of-two way count.
 */
struct PlruTree
{
    std::uint64_t bits = 0;

    /** Way the tree currently designates as victim. */
    std::size_t
    victim(std::size_t ways) const
    {
        std::size_t node = 0;
        while (node < ways - 1) {
            const bool right = (bits >> node) & 1;
            node = 2 * node + 1 + (right ? 1 : 0);
        }
        return node - (ways - 1);
    }

    /** Record a reference to @p way: bits on its path point away. */
    void
    touch(std::size_t way, std::size_t ways)
    {
        std::size_t node = way + (ways - 1);
        while (node != 0) {
            const std::size_t parent = (node - 1) / 2;
            const bool came_from_right = node == 2 * parent + 2;
            // Point the parent at the *other* child.
            if (came_from_right)
                bits &= ~(std::uint64_t{1} << parent);
            else
                bits |= std::uint64_t{1} << parent;
            node = parent;
        }
    }
};

/**
 * Choose a victim among @p count candidate entries starting at
 * @p entries.  Invalid entries are preferred unconditionally;
 * otherwise selection follows @p policy.
 *
 * @param plru per-group tree state; consulted only for TreePLRU
 * @return index of the victim within the candidate group
 */
inline std::size_t
chooseVictim(const TlbEntry *entries, std::size_t count, ReplPolicy policy,
             Rng &rng, const PlruTree &plru = {})
{
    for (std::size_t i = 0; i < count; ++i)
        if (!entries[i].valid)
            return i;

    if (policy == ReplPolicy::TreePLRU)
        return plru.victim(count);

    switch (policy) {
      case ReplPolicy::LRU: {
          std::size_t victim = 0;
          for (std::size_t i = 1; i < count; ++i)
              if (entries[i].lastUse < entries[victim].lastUse)
                  victim = i;
          return victim;
      }
      case ReplPolicy::FIFO: {
          std::size_t victim = 0;
          for (std::size_t i = 1; i < count; ++i)
              if (entries[i].inserted < entries[victim].inserted)
                  victim = i;
          return victim;
      }
      case ReplPolicy::Random:
        return static_cast<std::size_t>(rng.below(count));
      case ReplPolicy::TreePLRU:
        break; // handled above
    }
    return 0;
}

} // namespace tps

#endif // TPS_TLB_REPLACEMENT_H_
