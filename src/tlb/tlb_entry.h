/**
 * @file
 * One TLB entry and the replacement metadata it carries.
 */

#ifndef TPS_TLB_TLB_ENTRY_H_
#define TPS_TLB_TLB_ENTRY_H_

#include <cstdint>

#include "vm/page.h"

namespace tps
{

/**
 * A TLB entry: tag (PageId: vpn + page size, per Section 2.1 — the tag
 * must include the page size so hit detection can select the right
 * comparison width) plus an address-space identifier and replacement
 * bookkeeping.  The ASID extends the tag the same way the page size
 * does: a hit requires the entry to belong to the looking-up context,
 * which is what lets a tagged TLB survive context switches without
 * flushing (see os/scheduler.h for the three switch modes).
 */
struct TlbEntry
{
    PageId page;
    std::uint16_t asid = 0; ///< owning address-space context
    bool valid = false;
    std::uint64_t lastUse = 0;  ///< access clock at last hit/fill (LRU)
    std::uint64_t inserted = 0; ///< access clock at fill (FIFO)

    bool
    matches(const PageId &lookup, std::uint16_t lookup_asid) const
    {
        return valid && asid == lookup_asid && page == lookup;
    }
};

/** Replacement policies available to every associative organization. */
enum class ReplPolicy : std::uint8_t
{
    LRU = 0,
    FIFO = 1,
    Random = 2,
    /**
     * Tree pseudo-LRU: the hardware-realistic approximation real TLBs
     * ship (true LRU needs O(ways log ways) state and wide updates).
     * Implemented via the victim-selection helpers in replacement.h;
     * requires a power-of-two way count.
     */
    TreePLRU = 3,
};

constexpr const char *
replPolicyName(ReplPolicy policy)
{
    switch (policy) {
      case ReplPolicy::LRU:
        return "LRU";
      case ReplPolicy::FIFO:
        return "FIFO";
      case ReplPolicy::Random:
        return "random";
      case ReplPolicy::TreePLRU:
        return "tree-PLRU";
    }
    return "?";
}

} // namespace tps

#endif // TPS_TLB_TLB_ENTRY_H_
