/**
 * @file
 * Fully associative TLB (paper Section 2.1).
 *
 * The straightforward way to support multiple page sizes: every entry
 * carries the page size in its tag and (logically) has its own
 * comparator, so any page of any size can live in any entry.
 *
 * Entry state is stored structure-of-arrays (soa_store.h) so the
 * all-entries tag compare vectorizes; lookupBatch() amortizes the
 * per-reference virtual dispatch on top of that.
 */

#ifndef TPS_TLB_FULLY_ASSOC_H_
#define TPS_TLB_FULLY_ASSOC_H_

#include "tlb/replacement.h"
#include "tlb/soa_store.h"
#include "tlb/tlb.h"
#include "tlb/tlb_entry.h"
#include "util/random.h"

namespace tps
{

/** Fully associative TLB with pluggable replacement. */
class FullyAssocTlb : public Tlb
{
  public:
    /**
     * @param entries capacity (any positive count; real FA TLBs need
     *                not be powers of two — the R4000's is 48 entries)
     * @param large_log2 page-size exponent treated as "large" in the
     *                per-size statistics split
     */
    FullyAssocTlb(std::size_t entries, ReplPolicy policy = ReplPolicy::LRU,
                  unsigned large_log2 = kLog2_32K,
                  std::uint64_t rng_seed = 1);

    bool access(const PageId &page, Addr vaddr) override;
    void lookupBatch(const BatchRef *refs, std::size_t n,
                     BatchResult &out) override;
    void invalidatePage(const PageId &page) override;
    void invalidateAll() override;
    void invalidateAsid(std::uint16_t asid) override;
    void reset() override;
    void resetStats() override { stats_ = TlbStats{}; }
    std::size_t capacity() const override { return store_.size(); }
    const TlbStats &stats() const override { return stats_; }
    std::string name() const override;

    /**
     * Probe-cache effectiveness over the batched path (the campaign
     * engine's default).  Counted per lookupBatch() call, not per
     * reference, so the hot loop is untouched; access() probes are
     * not included.
     */
    ProbeCacheCounters probeCacheCounters() const override
    {
        return pc_;
    }

    ReachSnapshot reachSnapshot() const override;
    void setEventSink(obs::EventLogRecorder *recorder,
                      const std::string &tag) override;

    bool
    setEvictionSink(TlbEvictionSink *sink) override
    {
        evict_sink_ = sink;
        return true;
    }

    ReplPolicy policy() const { return policy_; }

    /** Count of currently valid entries (for tests). */
    std::size_t validCount() const;

    /** Is @p page resident under the current ASID (for tests)? */
    bool contains(const PageId &page) const;

  private:
    /** One probe + fill, shared by access() and lookupBatch(). */
    bool probeOne(const PageId &page);

    /**
     * Direct-mapped probe-index cache: lookup_[vpn & mask] remembers
     * which entry a page last matched or filled.  Pure search-order
     * optimization — a cached index is only trusted after
     * re-validating the store at that index, and a resident
     * (vpn, meta) pair is unique (fills only follow whole-store
     * misses), so a validated match IS the unique match and hit/miss
     * outcomes, replacement and statistics are bit-identical with or
     * without it.  Colliding or stale slots simply fail validation
     * and fall back to the full scan, which rewrites the slot
     * (self-healing).  Sized 4x the entry count so live pages rarely
     * collide.
     */
    std::uint32_t lookupMask() const
    {
        return static_cast<std::uint32_t>(lookup_.size() - 1);
    }

    detail::SoaStore store_;
    std::vector<std::uint32_t> lookup_;
    ReplPolicy policy_;
    unsigned large_log2_;
    Rng rng_;
    std::uint64_t rng_seed_;
    std::uint64_t clock_ = 0;
    PlruTree plru_; ///< used only under ReplPolicy::TreePLRU
    TlbStats stats_;
    ProbeCacheCounters pc_; ///< batched-path cache telemetry
    obs::EventLogRecorder *events_ = nullptr;
    std::size_t evict_stream_ = 0;
    TlbEvictionSink *evict_sink_ = nullptr;
};

} // namespace tps

#endif // TPS_TLB_FULLY_ASSOC_H_
