/**
 * @file
 * Fully associative TLB (paper Section 2.1).
 *
 * The straightforward way to support multiple page sizes: every entry
 * carries the page size in its tag and (logically) has its own
 * comparator, so any page of any size can live in any entry.
 */

#ifndef TPS_TLB_FULLY_ASSOC_H_
#define TPS_TLB_FULLY_ASSOC_H_

#include <vector>

#include "tlb/replacement.h"
#include "tlb/tlb.h"
#include "tlb/tlb_entry.h"
#include "util/random.h"

namespace tps
{

/** Fully associative TLB with pluggable replacement. */
class FullyAssocTlb : public Tlb
{
  public:
    /**
     * @param entries capacity (any positive count; real FA TLBs need
     *                not be powers of two — the R4000's is 48 entries)
     * @param large_log2 page-size exponent treated as "large" in the
     *                per-size statistics split
     */
    FullyAssocTlb(std::size_t entries, ReplPolicy policy = ReplPolicy::LRU,
                  unsigned large_log2 = kLog2_32K,
                  std::uint64_t rng_seed = 1);

    bool access(const PageId &page, Addr vaddr) override;
    void invalidatePage(const PageId &page) override;
    void invalidateAll() override;
    void invalidateAsid(std::uint16_t asid) override;
    void reset() override;
    void resetStats() override { stats_ = TlbStats{}; }
    std::size_t capacity() const override { return entries_.size(); }
    const TlbStats &stats() const override { return stats_; }
    std::string name() const override;

    ReplPolicy policy() const { return policy_; }

    /** Count of currently valid entries (for tests). */
    std::size_t validCount() const;

    /** Is @p page resident under the current ASID (for tests)? */
    bool contains(const PageId &page) const;

  private:
    std::vector<TlbEntry> entries_;
    ReplPolicy policy_;
    unsigned large_log2_;
    Rng rng_;
    std::uint64_t rng_seed_;
    std::uint64_t clock_ = 0;
    PlruTree plru_; ///< used only under ReplPolicy::TreePLRU
    TlbStats stats_;
};

} // namespace tps

#endif // TPS_TLB_FULLY_ASSOC_H_
