#include "tlb/fully_assoc.h"

#include <algorithm>
#include <bit>

#include "tlb/tlb_detail.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace tps
{

FullyAssocTlb::FullyAssocTlb(std::size_t entries, ReplPolicy policy,
                             unsigned large_log2, std::uint64_t rng_seed)
    : store_(entries), policy_(policy), large_log2_(large_log2),
      rng_(rng_seed), rng_seed_(rng_seed)
{
    lookup_.assign(std::bit_ceil(entries * 4), 0);
    if (entries == 0)
        tps_fatal("TLB must have at least one entry");
    if (policy == ReplPolicy::TreePLRU &&
        (!isPow2(entries) || entries > 64)) {
        tps_fatal("tree-PLRU needs a power-of-two entry count <= 64, "
                  "got ", entries);
    }
}

inline bool
FullyAssocTlb::probeOne(const PageId &page)
{
    ++clock_;
    const bool is_large = page.sizeLog2 >= large_log2_;
    const std::uint32_t want_meta =
        detail::packMeta(asid_, page.sizeLog2);

    // Probe-index cache first: a validated slot is the unique match
    // (see lookup_'s declaration); a colliding or stale slot fails
    // the store re-check and we fall through to the full scan.
    const std::uint32_t slot =
        static_cast<std::uint32_t>(page.vpn) & lookupMask();
    const std::size_t cached = lookup_[slot];
    if (store_.meta[cached] == want_meta &&
        store_.vpn[cached] == page.vpn) {
        store_.lastUse[cached] = clock_;
        if (policy_ == ReplPolicy::TreePLRU)
            plru_.touch(cached, store_.size());
        detail::recordOutcome(stats_, true, is_large);
        return true;
    }

    const long found =
        detail::soaFindMatch(store_, 0, store_.size(), want_meta,
                             page.vpn);
    if (found >= 0) {
        const auto i = static_cast<std::size_t>(found);
        lookup_[slot] = static_cast<std::uint32_t>(i);
        store_.lastUse[i] = clock_;
        if (policy_ == ReplPolicy::TreePLRU)
            plru_.touch(i, store_.size());
        detail::recordOutcome(stats_, true, is_large);
        return true;
    }

    detail::recordOutcome(stats_, false, is_large);
    const std::size_t victim = detail::soaChooseVictim(
        store_, 0, store_.size(), policy_, rng_, plru_);
    if (store_.valid(victim)) {
        ++stats_.evictions;
        // Dwell = probes this entry survived since its fill; clock_ is
        // already synced here on the batched fast path (lookupBatch
        // stores its local clock back before delegating to probeOne).
        if (events_ != nullptr)
            events_->emit(evict_stream_, clock_, store_.vpn[victim],
                          store_.meta[victim] & 0xff,
                          clock_ - store_.inserted[victim]);
        if (evict_sink_ != nullptr)
            evict_sink_->onTlbEviction(
                store_.pageAt(victim),
                detail::metaAsid(store_.meta[victim]),
                clock_ - store_.inserted[victim]);
    }
    store_.fill(victim, page, asid_, clock_);
    lookup_[slot] = static_cast<std::uint32_t>(victim);
    if (policy_ == ReplPolicy::TreePLRU)
        plru_.touch(victim, store_.size());
    ++stats_.fills;
    return false;
}

bool
FullyAssocTlb::access(const PageId &page, Addr vaddr)
{
    (void)vaddr; // fully associative: no index bits
    return probeOne(page);
}

void
FullyAssocTlb::lookupBatch(const BatchRef *refs, std::size_t n,
                           BatchResult &out)
{
    out.hit.resize(n);
    // Specialized probeOne loop: the probe-index hit path keeps the
    // clock in a local and defers its statistics to per-batch
    // accumulators, so the common resident-page reference costs a
    // handful of loads instead of five member read-modify-writes.
    // Outcomes, entry state, replacement decisions and final stats
    // are bit-identical to calling probeOne n times — only the order
    // of commutative counter increments changes, and nothing observes
    // stats_ mid-batch.
    std::uint8_t *hit_out = out.hit.data();
    const std::uint16_t asid = asid_;
    const unsigned large_log2 = large_log2_;
    const bool plru_on = policy_ == ReplPolicy::TreePLRU;
    const std::uint32_t *entry_meta = store_.meta.data();
    const Addr *entry_vpn = store_.vpn.data();
    RefTime *entry_last = store_.lastUse.data();
    const std::uint32_t *lookup = lookup_.data();
    const std::uint32_t mask = lookupMask();
    std::uint64_t clock = clock_;
    std::uint64_t hits_small = 0;
    std::uint64_t hits_large = 0;

    for (std::size_t i = 0; i < n; ++i) {
        const PageId page = refs[i].page;
        const std::uint32_t want_meta =
            detail::packMeta(asid, page.sizeLog2);
        const std::size_t cached =
            lookup[static_cast<std::uint32_t>(page.vpn) & mask];
        if (entry_meta[cached] == want_meta &&
            entry_vpn[cached] == page.vpn) {
            entry_last[cached] = ++clock;
            if (plru_on)
                plru_.touch(cached, store_.size());
            if (page.sizeLog2 >= large_log2)
                ++hits_large;
            else
                ++hits_small;
            hit_out[i] = 1;
            continue;
        }
        clock_ = clock; // probeOne advances the clock + stats itself
        hit_out[i] = probeOne(page) ? 1 : 0;
        clock = clock_;
    }

    clock_ = clock;
    stats_.accesses += hits_small + hits_large;
    stats_.hits += hits_small + hits_large;
    stats_.hitsSmall += hits_small;
    stats_.hitsLarge += hits_large;
    // Harness telemetry: every batched ref consulted the probe-index
    // cache; exactly the fast-path hits were resolved by it (a ref
    // that fell to probeOne re-fails the identical slot check there).
    pc_.lookups += n;
    pc_.hits += hits_small + hits_large;
}

void
FullyAssocTlb::invalidatePage(const PageId &page)
{
    const std::uint32_t want_meta =
        detail::packMeta(asid_, page.sizeLog2);
    for (std::size_t i = 0; i < store_.size(); ++i) {
        if (store_.meta[i] == want_meta && store_.vpn[i] == page.vpn) {
            store_.invalidate(i);
            ++stats_.invalidations;
        }
    }
}

void
FullyAssocTlb::invalidateAsid(std::uint16_t asid)
{
    for (std::size_t i = 0; i < store_.size(); ++i) {
        if (store_.valid(i) && detail::metaAsid(store_.meta[i]) == asid) {
            store_.invalidate(i);
            ++stats_.invalidations;
        }
    }
}

void
FullyAssocTlb::invalidateAll()
{
    for (std::size_t i = 0; i < store_.size(); ++i) {
        if (store_.valid(i)) {
            store_.invalidate(i);
            ++stats_.invalidations;
        }
    }
}

void
FullyAssocTlb::reset()
{
    store_.clear();
    std::fill(lookup_.begin(), lookup_.end(), 0);
    clock_ = 0;
    stats_ = TlbStats{};
    pc_ = ProbeCacheCounters{};
    rng_ = Rng(rng_seed_);
    plru_ = PlruTree{};
    asid_ = 0;
}

Tlb::ReachSnapshot
FullyAssocTlb::reachSnapshot() const
{
    ReachSnapshot snap;
    snap.sets = 1;
    snap.setOccupancy.assign(store_.size() + 1, 0);
    std::size_t valid = 0;
    for (std::size_t i = 0; i < store_.size(); ++i) {
        if (!store_.valid(i))
            continue;
        ++valid;
        snap.reachBytes += std::uint64_t{1} << (store_.meta[i] & 0xff);
    }
    ++snap.setOccupancy[valid];
    snap.fullSets = valid == store_.size() ? 1 : 0;
    return snap;
}

void
FullyAssocTlb::setEventSink(obs::EventLogRecorder *recorder,
                            const std::string &tag)
{
    events_ = recorder;
    if (recorder != nullptr) {
        evict_stream_ = recorder->stream(
            tag.empty() ? "tlb_evict" : "tlb_evict." + tag,
            {"vpn", "size_log2", "dwell"});
    }
}

std::string
FullyAssocTlb::name() const
{
    return std::to_string(store_.size()) + "-entry fully assoc (" +
           replPolicyName(policy_) + ")";
}

std::size_t
FullyAssocTlb::validCount() const
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < store_.size(); ++i)
        count += store_.valid(i) ? 1 : 0;
    return count;
}

bool
FullyAssocTlb::contains(const PageId &page) const
{
    return detail::soaFindMatch(store_, 0, store_.size(),
                                detail::packMeta(asid_, page.sizeLog2),
                                page.vpn) >= 0;
}

} // namespace tps
