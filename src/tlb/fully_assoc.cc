#include "tlb/fully_assoc.h"

#include "tlb/tlb_detail.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace tps
{

FullyAssocTlb::FullyAssocTlb(std::size_t entries, ReplPolicy policy,
                             unsigned large_log2, std::uint64_t rng_seed)
    : entries_(entries), policy_(policy), large_log2_(large_log2),
      rng_(rng_seed), rng_seed_(rng_seed)
{
    if (entries == 0)
        tps_fatal("TLB must have at least one entry");
    if (policy == ReplPolicy::TreePLRU &&
        (!isPow2(entries) || entries > 64)) {
        tps_fatal("tree-PLRU needs a power-of-two entry count <= 64, "
                  "got ", entries);
    }
}

bool
FullyAssocTlb::access(const PageId &page, Addr vaddr)
{
    (void)vaddr; // fully associative: no index bits
    ++clock_;
    const bool is_large = page.sizeLog2 >= large_log2_;

    for (std::size_t i = 0; i < entries_.size(); ++i) {
        TlbEntry &entry = entries_[i];
        if (entry.matches(page, asid_)) {
            entry.lastUse = clock_;
            if (policy_ == ReplPolicy::TreePLRU)
                plru_.touch(i, entries_.size());
            detail::recordOutcome(stats_, true, is_large);
            return true;
        }
    }

    detail::recordOutcome(stats_, false, is_large);
    const std::size_t victim = chooseVictim(
        entries_.data(), entries_.size(), policy_, rng_, plru_);
    TlbEntry &slot = entries_[victim];
    if (slot.valid)
        ++stats_.evictions;
    slot.page = page;
    slot.asid = asid_;
    slot.valid = true;
    slot.lastUse = clock_;
    slot.inserted = clock_;
    if (policy_ == ReplPolicy::TreePLRU)
        plru_.touch(victim, entries_.size());
    ++stats_.fills;
    return false;
}

void
FullyAssocTlb::invalidatePage(const PageId &page)
{
    for (TlbEntry &entry : entries_) {
        if (entry.matches(page, asid_)) {
            entry.valid = false;
            ++stats_.invalidations;
        }
    }
}

void
FullyAssocTlb::invalidateAsid(std::uint16_t asid)
{
    for (TlbEntry &entry : entries_) {
        if (entry.valid && entry.asid == asid) {
            entry.valid = false;
            ++stats_.invalidations;
        }
    }
}

void
FullyAssocTlb::invalidateAll()
{
    for (TlbEntry &entry : entries_) {
        if (entry.valid) {
            entry.valid = false;
            ++stats_.invalidations;
        }
    }
}

void
FullyAssocTlb::reset()
{
    for (TlbEntry &entry : entries_)
        entry = TlbEntry{};
    clock_ = 0;
    stats_ = TlbStats{};
    rng_ = Rng(rng_seed_);
    plru_ = PlruTree{};
    asid_ = 0;
}

std::string
FullyAssocTlb::name() const
{
    return std::to_string(entries_.size()) + "-entry fully assoc (" +
           replPolicyName(policy_) + ")";
}

std::size_t
FullyAssocTlb::validCount() const
{
    std::size_t count = 0;
    for (const TlbEntry &entry : entries_)
        count += entry.valid ? 1 : 0;
    return count;
}

bool
FullyAssocTlb::contains(const PageId &page) const
{
    for (const TlbEntry &entry : entries_)
        if (entry.matches(page, asid_))
            return true;
    return false;
}

} // namespace tps
