/**
 * @file
 * Set-associative TLB supporting two page sizes (paper Section 2.2).
 *
 * The open design question the paper analyzes: which address bits index
 * the set array when the page size is not known at lookup time?
 *
 *  - SmallPage index: bits above the small page offset.  A large page
 *    then indexes to *different* sets depending on offset bits inside
 *    it, so one large page can occupy (and miss in) many sets — the
 *    scheme the paper rules out.
 *  - LargePage index: bits above the large page offset.  Consistent
 *    for both sizes, but all 2^(largeLog2-smallLog2) small pages of a
 *    chunk compete for one set.
 *  - Exact index: bits above the page's own offset.  Hardware must
 *    discover the size: probe both indexes in parallel, reprobe
 *    sequentially, or split the TLB (Section 2.2, options a/b/c).
 *    Miss behaviour is identical across those options; they differ in
 *    probe cost, which the CPI model charges (see core/cpi_model.h).
 *
 * Entries are stored structure-of-arrays (soa_store.h), set-major, so
 * the per-set way compare is branch-free; lookupBatch() amortizes the
 * per-reference virtual dispatch on top of that.
 */

#ifndef TPS_TLB_SET_ASSOC_H_
#define TPS_TLB_SET_ASSOC_H_

#include <vector>

#include "tlb/replacement.h"
#include "tlb/soa_store.h"
#include "tlb/tlb.h"
#include "tlb/tlb_entry.h"
#include "util/random.h"

namespace tps
{

/** Set-index selection for a two-page-size set-associative TLB. */
enum class IndexScheme : std::uint8_t
{
    SmallPage = 0, ///< index with small-page-number bits (broken)
    LargePage = 1, ///< index with large-page-number bits
    Exact = 2,     ///< index with the page's own page-number bits
};

constexpr const char *
indexSchemeName(IndexScheme scheme)
{
    switch (scheme) {
      case IndexScheme::SmallPage:
        return "small-index";
      case IndexScheme::LargePage:
        return "large-index";
      case IndexScheme::Exact:
        return "exact-index";
    }
    return "?";
}

/** Set-associative TLB with a two-page-size indexing scheme. */
class SetAssocTlb : public Tlb
{
  public:
    /**
     * @param entries  total capacity; must be ways * power-of-two sets
     * @param ways     associativity
     * @param scheme   set-index selection (see IndexScheme)
     * @param small_log2,large_log2 the two supported page sizes
     */
    SetAssocTlb(std::size_t entries, std::size_t ways, IndexScheme scheme,
                unsigned small_log2 = kLog2_4K,
                unsigned large_log2 = kLog2_32K,
                ReplPolicy policy = ReplPolicy::LRU,
                std::uint64_t rng_seed = 1);

    bool access(const PageId &page, Addr vaddr) override;
    void lookupBatch(const BatchRef *refs, std::size_t n,
                     BatchResult &out) override;
    void invalidatePage(const PageId &page) override;
    void invalidateAll() override;
    void invalidateAsid(std::uint16_t asid) override;
    void reset() override;
    void resetStats() override { stats_ = TlbStats{}; }
    std::size_t capacity() const override { return store_.size(); }
    const TlbStats &stats() const override { return stats_; }
    std::string name() const override;

    std::size_t numSets() const { return sets_; }
    std::size_t numWays() const { return ways_; }
    IndexScheme scheme() const { return scheme_; }

    ReachSnapshot reachSnapshot() const override;
    void setEventSink(obs::EventLogRecorder *recorder,
                      const std::string &tag) override;

    /** Set index this (page, vaddr) pair probes (exposed for tests). */
    std::size_t indexFor(const PageId &page, Addr vaddr) const;

    /** Number of valid entries holding @p page (duplicates possible
     *  only under the SmallPage scheme; for tests). */
    std::size_t residentCopies(const PageId &page) const;

  private:
    /** One probe + fill, shared by access() and lookupBatch(). */
    bool probeOne(const PageId &page, Addr vaddr);

    detail::SoaStore store_; ///< sets_ x ways_, set-major
    std::size_t sets_;
    std::size_t ways_;
    IndexScheme scheme_;
    unsigned small_log2_;
    unsigned large_log2_;
    unsigned index_bits_;
    ReplPolicy policy_;
    Rng rng_;
    std::uint64_t rng_seed_;
    std::uint64_t clock_ = 0;
    std::vector<PlruTree> plru_; ///< per set; TreePLRU only
    TlbStats stats_;
    obs::EventLogRecorder *events_ = nullptr;
    std::size_t evict_stream_ = 0;
};

} // namespace tps

#endif // TPS_TLB_SET_ASSOC_H_
