/**
 * @file
 * The TLB simulation interface.
 *
 * Every TLB model consumes (PageId, vaddr) pairs: the PageId is the
 * translation unit the OS policy assigned (Section 3.4 of the paper),
 * while the raw vaddr is what the hardware actually has at indexing
 * time — the distinction is the crux of the set-associative indexing
 * problem the paper analyzes in Section 2.2.
 */

#ifndef TPS_TLB_TLB_H_
#define TPS_TLB_TLB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/stat_registry.h"
#include "vm/page.h"
#include "vm/policy.h"

namespace tps
{

/** Event counters shared by every TLB model. */
struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    /** Broken out by the page size of the reference. */
    std::uint64_t hitsSmall = 0;
    std::uint64_t hitsLarge = 0;
    std::uint64_t missesSmall = 0;
    std::uint64_t missesLarge = 0;

    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;     ///< valid entries displaced by fills
    std::uint64_t invalidations = 0; ///< entries removed by shootdowns

    double
    missRatio() const
    {
        return accesses == 0 ? 0.0
                             : static_cast<double>(misses) /
                                   static_cast<double>(accesses);
    }

    /**
     * Register every counter under "<prefix>." ("tlb.miss",
     * "tlb.hit_large", ...) plus the derived miss ratio.
     */
    void exportTo(obs::StatRegistry &registry,
                  const std::string &prefix = "tlb") const;

    /**
     * Counter deltas accumulated since @p since was snapshotted
     * (interval telemetry: every field of the result is this-minus-
     * since, so summing successive diffs reproduces the aggregate).
     * @p since must be an earlier snapshot of the same stats stream.
     */
    TlbStats deltaSince(const TlbStats &since) const;
};

/**
 * Probe-index-cache effectiveness counters (harness self-telemetry,
 * DESIGN.md §11).  Deliberately *outside* TlbStats: these describe the
 * simulator's own speed, not the simulated machine, so they must never
 * leak into model-facing stats dumps or determinism diffs.  Models
 * without such a cache report zeros.
 */
struct ProbeCacheCounters
{
    std::uint64_t lookups = 0; ///< probes that consulted the cache
    std::uint64_t hits = 0;    ///< probes resolved by a validated slot
};

/**
 * Observer of capacity evictions (valid entries displaced by fills —
 * never shootdowns, whose translations are stale and must not be
 * cached anywhere).  A victim TLB registers itself here to catch what
 * its primary throws away (tlb/victim_tlb.h).
 */
class TlbEvictionSink
{
  public:
    virtual ~TlbEvictionSink() = default;

    /**
     * @param page  the displaced translation
     * @param asid  address-space tag the entry carried
     * @param dwell probes the entry survived since its fill
     */
    virtual void onTlbEviction(const PageId &page, std::uint16_t asid,
                               std::uint64_t dwell) = 0;
};

/**
 * Abstract TLB.  Implements InvalidationSink so a PageSizePolicy can
 * shoot down stale translations on promotion/demotion.
 */
class Tlb : public InvalidationSink
{
  public:
    ~Tlb() override = default;

    /** One pre-classified reference of a probe batch. */
    struct BatchRef
    {
        PageId page; ///< translation unit assigned by the OS policy
        Addr vaddr;  ///< full virtual address (drives set indexing)
    };

    /** Per-reference outcomes of one lookupBatch() call. */
    struct BatchResult
    {
        /** hit[i] != 0 iff refs[i] hit; resized to n by the callee. */
        std::vector<std::uint8_t> hit;
    };

    /**
     * Simulate one translation.  On a miss the translation is filled
     * (trace-driven convention: the fill always succeeds).
     *
     * @param page  translation unit assigned by the OS policy
     * @param vaddr full virtual address (drives set indexing)
     * @return true on hit
     */
    virtual bool access(const PageId &page, Addr vaddr) = 0;

    /**
     * Probe @p n references in order, exactly as if access() had been
     * called once per reference: identical hit/miss outcomes, fills,
     * evictions, replacement-state evolution and statistics.  The base
     * implementation *is* that per-reference loop and serves as the
     * oracle the batched overrides are tested against; overrides exist
     * purely to amortize dispatch and to probe structure-of-arrays
     * entry state with vectorizable compares (DESIGN.md §11).
     *
     * Invalidations and ASID switches must not occur mid-batch; the
     * caller splits its batches at such events (see the batched
     * experiment engine in core/experiment.cc).
     */
    virtual void lookupBatch(const BatchRef *refs, std::size_t n,
                             BatchResult &out);

    /** Remove every entry (context-switch flush). */
    virtual void invalidateAll() = 0;

    /**
     * Remove every entry tagged with @p asid (the "recycling flush" a
     * bounded hardware ASID file performs when it reassigns a tag to a
     * new context; see os/scheduler.h).  Removed entries count as
     * invalidations, exactly like invalidateAll().
     */
    virtual void invalidateAsid(std::uint16_t asid) = 0;

    /**
     * Switch the active address-space context: subsequent lookups,
     * fills and invalidatePage() calls carry this tag.  Composite TLBs
     * forward the switch to their sub-TLBs.  The default tag is 0, so
     * a single-context simulation never observes ASIDs at all.
     */
    virtual void setAsid(std::uint16_t asid) { asid_ = asid; }
    std::uint16_t currentAsid() const { return asid_; }

    /** Clear contents and statistics. */
    virtual void reset() = 0;

    /**
     * Zero the statistics while keeping TLB contents (used to exclude
     * warmup from measurement; the paper's billion-reference traces
     * amortize cold effects that our scaled traces must skip).
     */
    virtual void resetStats() = 0;

    /** Total entry capacity. */
    virtual std::size_t capacity() const = 0;

    virtual const TlbStats &stats() const = 0;
    virtual std::string name() const = 0;

    /**
     * Harness self-telemetry: probe-index-cache effectiveness since
     * the last reset().  Zeros for models without such a cache.
     */
    virtual ProbeCacheCounters probeCacheCounters() const { return {}; }

    /**
     * Point-in-time occupancy of the TLB, the raw material of the
     * paper's "TLB reach" argument (Section 2.1): how many bytes of
     * address space the currently-valid entries cover, and how full
     * each set is (set pressure is what makes the paper's
     * set-associative indexing problem bite).
     */
    struct ReachSnapshot
    {
        std::uint64_t reachBytes = 0; ///< sum of 2^sizeLog2 over valid
        std::uint64_t sets = 0;
        std::uint64_t fullSets = 0; ///< sets with every way valid
        /** Histogram: setOccupancy[k] = sets with k valid ways. */
        std::vector<std::uint64_t> setOccupancy;
    };

    /**
     * Snapshot current occupancy/reach.  Composite TLBs report the
     * level that defines their reach (TwoLevelTlb: the L2, matching
     * capacity()); SplitTlb merges its sub-TLBs.
     */
    virtual ReachSnapshot reachSnapshot() const { return {}; }

    /**
     * Attach an event recorder: the TLB registers its eviction
     * stream(s) ("tlb_evict" or "tlb_evict.<tag>", fields {vpn,
     * size_log2, dwell}) immediately — stream registration must be a
     * function of configuration, not of whether evictions occur — and
     * thereafter emits one event per valid-entry displacement, with
     * dwell = probes survived since fill.  Composite TLBs forward to
     * their sub-TLBs with distinguishing tags (one stream per sub,
     * because batching partitions refs across subs but never reorders
     * within one).  Pass nullptr to detach.  Default: events ignored.
     */
    virtual void
    setEventSink(obs::EventLogRecorder *recorder, const std::string &tag)
    {
        (void)recorder;
        (void)tag;
    }

    /**
     * Attach an eviction observer: the sink is called once per
     * capacity eviction (valid entry displaced by a fill), at the
     * point the entry leaves — shootdown invalidations never reach
     * it.  Pass nullptr to detach.
     * @return true when the organization supports the hook (the
     *         victim wrapper fails fast on a primary that does not).
     */
    virtual bool
    setEvictionSink(TlbEvictionSink *sink)
    {
        (void)sink;
        return false;
    }

  protected:
    std::uint16_t asid_ = 0; ///< active context tag (see setAsid)
};

} // namespace tps

#endif // TPS_TLB_TLB_H_
