#include "tlb/tlb.h"

#include "tlb/tlb_detail.h"

namespace tps
{

void
Tlb::lookupBatch(const BatchRef *refs, std::size_t n, BatchResult &out)
{
    // Reference semantics: one virtual access() per reference.  Batched
    // organizations override this; equivalence is asserted by the perf
    // test suite (tests/perf/batch_probe_test.cc).
    out.hit.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        out.hit[i] = access(refs[i].page, refs[i].vaddr) ? 1 : 0;
}

void
TlbStats::exportTo(obs::StatRegistry &registry,
                   const std::string &prefix) const
{
    registry.addCounter(prefix + ".access", accesses);
    registry.addCounter(prefix + ".hit", hits);
    registry.addCounter(prefix + ".miss", misses);
    registry.addCounter(prefix + ".hit_small", hitsSmall);
    registry.addCounter(prefix + ".hit_large", hitsLarge);
    registry.addCounter(prefix + ".miss_small", missesSmall);
    registry.addCounter(prefix + ".miss_large", missesLarge);
    registry.addCounter(prefix + ".fill", fills);
    registry.addCounter(prefix + ".eviction", evictions);
    registry.addCounter(prefix + ".invalidation", invalidations);
    registry.addValue(prefix + ".miss_ratio", missRatio());
}

TlbStats
TlbStats::deltaSince(const TlbStats &since) const
{
    TlbStats delta;
    delta.accesses = accesses - since.accesses;
    delta.hits = hits - since.hits;
    delta.misses = misses - since.misses;
    delta.hitsSmall = hitsSmall - since.hitsSmall;
    delta.hitsLarge = hitsLarge - since.hitsLarge;
    delta.missesSmall = missesSmall - since.missesSmall;
    delta.missesLarge = missesLarge - since.missesLarge;
    delta.fills = fills - since.fills;
    delta.evictions = evictions - since.evictions;
    delta.invalidations = invalidations - since.invalidations;
    return delta;
}

} // namespace tps

namespace tps::detail
{

void
recordOutcome(TlbStats &stats, bool hit, bool is_large)
{
    ++stats.accesses;
    if (hit) {
        ++stats.hits;
        if (is_large)
            ++stats.hitsLarge;
        else
            ++stats.hitsSmall;
    } else {
        ++stats.misses;
        if (is_large)
            ++stats.missesLarge;
        else
            ++stats.missesSmall;
    }
}

} // namespace tps::detail
