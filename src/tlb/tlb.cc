#include "tlb/tlb.h"

#include "tlb/tlb_detail.h"

namespace tps::detail
{

void
recordOutcome(TlbStats &stats, bool hit, bool is_large)
{
    ++stats.accesses;
    if (hit) {
        ++stats.hits;
        if (is_large)
            ++stats.hitsLarge;
        else
            ++stats.hitsSmall;
    } else {
        ++stats.misses;
        if (is_large)
            ++stats.missesLarge;
        else
            ++stats.missesSmall;
    }
}

} // namespace tps::detail
