/**
 * @file
 * Victim TLB: a software-filled side array catching primary evictions.
 *
 * A small primary TLB under two page sizes suffers conflict and
 * capacity casualties that a modest side buffer can resurrect: every
 * entry the primary displaces is parked in a FIFO/LRU victim array,
 * and a primary miss probes that array before paying the full
 * page-walk penalty (cf. Jouppi's victim caches; the Victima line of
 * work applies the same idea at TLB scale).  The wrapper composes any
 * eviction-observable Tlb (tlb.h TlbEvictionSink) with a large,
 * slower, fully associative victim array; a victim hit swaps the
 * entry back into the primary (which, under the trace-driven fill
 * convention, already refilled itself) and costs a distinct latency
 * the CPI model charges separately from a full walk.
 *
 * Interface "hit" means "did not reach the miss handler", exactly as
 * for TwoLevelTlb: a victim hit is a TLB hit at this interface; use
 * victimStats() to cost the victim-probe latency separately.
 */

#ifndef TPS_TLB_VICTIM_TLB_H_
#define TPS_TLB_VICTIM_TLB_H_

#include <memory>
#include <vector>

#include "tlb/tlb.h"

namespace tps
{

/** Extra counters specific to the victim arrangement. */
struct VictimStats
{
    std::uint64_t primaryHits = 0;
    std::uint64_t victimHits = 0;  ///< primary miss rescued by the array
    std::uint64_t victimFills = 0; ///< primary evictions parked
    std::uint64_t victimEvictions = 0; ///< parked entries aged out
    std::uint64_t victimInvalidations = 0; ///< shootdowns reaching the array
};

/**
 * A primary TLB backed by a victim array of displaced entries.
 *
 * Exclusive by construction: an entry lives in the primary or the
 * victim array, never both (victim hits move the entry back, fills of
 * the array come only from primary displacements), so FA-LRU(n) +
 * victim(m) matches FA-LRU(n+m) hit-for-hit in shootdown-free runs —
 * the oracle the unit tests check.
 */
class VictimTlb : public Tlb, private TlbEvictionSink
{
  public:
    /**
     * @param primary any Tlb supporting setEvictionSink (tps_fatal
     *                otherwise — the wrapper is blind without it)
     * @param victim_entries capacity of the victim array
     * @param large_log2 page-size exponent treated as "large" in the
     *                per-size statistics split
     */
    VictimTlb(std::unique_ptr<Tlb> primary, std::size_t victim_entries,
              unsigned large_log2 = kLog2_32K);

    bool access(const PageId &page, Addr vaddr) override;

    void invalidatePage(const PageId &page) override;
    void invalidateAll() override;
    void invalidateAsid(std::uint16_t asid) override;
    void setAsid(std::uint16_t asid) override;
    void reset() override;
    void resetStats() override;
    std::size_t capacity() const override;
    const TlbStats &stats() const override;
    std::string name() const override;

    ProbeCacheCounters probeCacheCounters() const override
    {
        return primary_->probeCacheCounters();
    }

    /** Primary snapshot merged with the array as one extra set. */
    ReachSnapshot reachSnapshot() const override;

    /**
     * Forwards @p tag unchanged to the primary — its "tlb_evict"
     * stream doubles as the victim-array refill stream — and registers
     * "victim_hit"/"victim_evict" (".<tag>"-suffixed) for the array's
     * own events, fields {vpn, size_log2, dwell} with dwell counted in
     * wrapper probes since the entry entered the array.
     */
    void setEventSink(obs::EventLogRecorder *recorder,
                      const std::string &tag) override;

    const VictimStats &victimStats() const { return vstats_; }
    const Tlb &primary() const { return *primary_; }

    /** Entries currently parked in the array (for tests). */
    std::size_t victimValidCount() const { return victim_.size(); }

  private:
    /** One parked translation; the array is ordered oldest-first. */
    struct Entry
    {
        Addr vpn;
        std::uint8_t sizeLog2;
        std::uint16_t asid;
        std::uint64_t inserted; ///< wrapper clock at park time
    };

    void onTlbEviction(const PageId &page, std::uint16_t asid,
                       std::uint64_t dwell) override;

    std::unique_ptr<Tlb> primary_;
    std::size_t entries_;
    unsigned large_log2_;

    /**
     * Oldest-first LRU: entries are appended on park and only ever
     * leave whole (victim hit, age-out, shootdown), never touched in
     * place, so FIFO-from-the-front IS exact LRU.
     */
    std::vector<Entry> victim_;

    /**
     * Eviction handed up by the primary mid-access: the primary fills
     * itself inside access(), so its casualty arrives via
     * onTlbEviction() *before* we have probed the array.  It is staged
     * here and parked only after the probe — inserting first could
     * age out the very entry being looked up and break the
     * FA-LRU(n+m) equivalence.
     */
    PageId pending_page_;
    std::uint16_t pending_asid_ = 0;
    bool pending_valid_ = false;

    std::uint64_t clock_ = 0;
    TlbStats stats_;
    VictimStats vstats_;

    obs::EventLogRecorder *events_ = nullptr;
    std::size_t hit_stream_ = 0;
    std::size_t evict_stream_ = 0;
};

} // namespace tps

#endif // TPS_TLB_VICTIM_TLB_H_
