#include "tlb/victim_tlb.h"

#include <algorithm>

#include "tlb/tlb_detail.h"
#include "util/logging.h"

namespace tps
{

VictimTlb::VictimTlb(std::unique_ptr<Tlb> primary,
                     std::size_t victim_entries, unsigned large_log2)
    : primary_(std::move(primary)), entries_(victim_entries),
      large_log2_(large_log2)
{
    if (!primary_)
        tps_fatal("VictimTlb requires a primary");
    if (entries_ == 0)
        tps_fatal("victim array must have at least one entry");
    if (!primary_->setEvictionSink(this))
        tps_fatal("victim TLB primary '", primary_->name(),
                  "' does not expose evictions");
    victim_.reserve(entries_);
}

void
VictimTlb::onTlbEviction(const PageId &page, std::uint16_t asid,
                         std::uint64_t dwell)
{
    (void)dwell; // the array restarts dwell at park time
    pending_page_ = page;
    pending_asid_ = asid;
    pending_valid_ = true;
}

bool
VictimTlb::access(const PageId &page, Addr vaddr)
{
    ++clock_;
    pending_valid_ = false;
    const bool is_large = page.sizeLog2 >= large_log2_;

    if (primary_->access(page, vaddr)) {
        ++vstats_.primaryHits;
        detail::recordOutcome(stats_, true, is_large);
        return true;
    }
    // Primary missed, refilled itself, and — if that fill displaced a
    // valid entry — staged the casualty in pending_.  Probe the array
    // BEFORE parking it: the pending entry must not age out the entry
    // this very lookup needs (see victim_ declaration).
    bool hit = false;
    for (auto it = victim_.begin(); it != victim_.end(); ++it) {
        if (it->vpn == page.vpn && it->sizeLog2 == page.sizeLog2 &&
            it->asid == asid_) {
            hit = true;
            ++vstats_.victimHits;
            if (events_ != nullptr)
                events_->emit(hit_stream_, clock_, it->vpn, it->sizeLog2,
                              clock_ - it->inserted);
            victim_.erase(it); // swapped back into the primary
            break;
        }
    }
    detail::recordOutcome(stats_, hit, is_large);
    if (!hit)
        ++stats_.fills;
    if (pending_valid_) {
        if (victim_.size() >= entries_) {
            const Entry &oldest = victim_.front();
            ++vstats_.victimEvictions;
            ++stats_.evictions;
            if (events_ != nullptr)
                events_->emit(evict_stream_, clock_, oldest.vpn,
                              oldest.sizeLog2, clock_ - oldest.inserted);
            victim_.erase(victim_.begin());
        }
        victim_.push_back(Entry{pending_page_.vpn,
                                pending_page_.sizeLog2, pending_asid_,
                                clock_});
        ++vstats_.victimFills;
        pending_valid_ = false;
    }
    return hit;
}

void
VictimTlb::invalidatePage(const PageId &page)
{
    primary_->invalidatePage(page);
    const auto is_stale = [&](const Entry &entry) {
        return entry.vpn == page.vpn &&
               entry.sizeLog2 == page.sizeLog2 && entry.asid == asid_;
    };
    const auto first =
        std::remove_if(victim_.begin(), victim_.end(), is_stale);
    vstats_.victimInvalidations +=
        static_cast<std::uint64_t>(victim_.end() - first);
    victim_.erase(first, victim_.end());
    // Count shootdowns once at the wrapper level, wherever they land.
    stats_.invalidations =
        primary_->stats().invalidations + vstats_.victimInvalidations;
}

void
VictimTlb::invalidateAsid(std::uint16_t asid)
{
    primary_->invalidateAsid(asid);
    const auto is_stale = [&](const Entry &entry) {
        return entry.asid == asid;
    };
    const auto first =
        std::remove_if(victim_.begin(), victim_.end(), is_stale);
    vstats_.victimInvalidations +=
        static_cast<std::uint64_t>(victim_.end() - first);
    victim_.erase(first, victim_.end());
    stats_.invalidations =
        primary_->stats().invalidations + vstats_.victimInvalidations;
}

void
VictimTlb::invalidateAll()
{
    primary_->invalidateAll();
    vstats_.victimInvalidations +=
        static_cast<std::uint64_t>(victim_.size());
    victim_.clear();
    stats_.invalidations =
        primary_->stats().invalidations + vstats_.victimInvalidations;
}

void
VictimTlb::setAsid(std::uint16_t asid)
{
    asid_ = asid;
    primary_->setAsid(asid);
}

void
VictimTlb::reset()
{
    primary_->reset();
    victim_.clear();
    pending_valid_ = false;
    clock_ = 0;
    stats_ = TlbStats{};
    vstats_ = VictimStats{};
    asid_ = 0;
}

void
VictimTlb::resetStats()
{
    primary_->resetStats();
    stats_ = TlbStats{};
    vstats_ = VictimStats{};
}

std::size_t
VictimTlb::capacity() const
{
    return primary_->capacity() + entries_;
}

const TlbStats &
VictimTlb::stats() const
{
    return stats_;
}

Tlb::ReachSnapshot
VictimTlb::reachSnapshot() const
{
    ReachSnapshot snap = primary_->reachSnapshot();
    snap.sets += 1; // the array reports as one fully associative set
    if (snap.setOccupancy.size() < entries_ + 1)
        snap.setOccupancy.resize(entries_ + 1, 0);
    ++snap.setOccupancy[victim_.size()];
    snap.fullSets += victim_.size() == entries_ ? 1 : 0;
    for (const Entry &entry : victim_)
        snap.reachBytes += std::uint64_t{1} << entry.sizeLog2;
    return snap;
}

void
VictimTlb::setEventSink(obs::EventLogRecorder *recorder,
                        const std::string &tag)
{
    // The primary's "tlb_evict" stream is exactly the array's refill
    // stream (every capacity eviction is parked), so the tag is
    // forwarded unchanged rather than nested.
    primary_->setEventSink(recorder, tag);
    events_ = recorder;
    if (recorder != nullptr) {
        const std::string suffix = tag.empty() ? "" : "." + tag;
        hit_stream_ = recorder->stream("victim_hit" + suffix,
                                       {"vpn", "size_log2", "dwell"});
        evict_stream_ = recorder->stream("victim_evict" + suffix,
                                         {"vpn", "size_log2", "dwell"});
    }
}

std::string
VictimTlb::name() const
{
    return "victim[" + primary_->name() + " + " +
           std::to_string(entries_) + "]";
}

} // namespace tps
