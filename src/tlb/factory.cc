#include "tlb/factory.h"

#include "tlb/fully_assoc.h"
#include "tlb/split_tlb.h"
#include "tlb/two_level_tlb.h"
#include "tlb/victim_tlb.h"
#include "util/logging.h"

namespace tps
{

std::string
TlbConfig::describe() const
{
    std::string text = std::to_string(entries) + "-entry ";
    switch (organization) {
      case TlbOrganization::FullyAssociative:
        text += "fully-assoc";
        break;
      case TlbOrganization::SetAssociative:
        text += std::to_string(ways) + "-way " + indexSchemeName(scheme);
        break;
      case TlbOrganization::Split:
        text += "split(" +
                std::to_string(entries - splitLargeEntries) + "s+" +
                std::to_string(splitLargeEntries) + "l)";
        break;
      case TlbOrganization::TwoLevel:
        text += "two-level(L1 " + std::to_string(l1Entries) + ")";
        break;
      case TlbOrganization::Victim:
        text += "fa+victim(" + std::to_string(victimEntries) + ")";
        break;
    }
    return text;
}

std::unique_ptr<Tlb>
makeTlb(const TlbConfig &config)
{
    switch (config.organization) {
      case TlbOrganization::FullyAssociative:
        return std::make_unique<FullyAssocTlb>(
            config.entries, config.replacement, config.largeLog2,
            config.rngSeed);

      case TlbOrganization::SetAssociative:
        return std::make_unique<SetAssocTlb>(
            config.entries, config.ways, config.scheme, config.smallLog2,
            config.largeLog2, config.replacement, config.rngSeed);

      case TlbOrganization::Split: {
          if (config.splitLargeEntries == 0 ||
              config.splitLargeEntries >= config.entries) {
              tps_fatal("split TLB needs 0 < large entries (",
                        config.splitLargeEntries, ") < total entries (",
                        config.entries, ")");
          }
          auto small_tlb = std::make_unique<FullyAssocTlb>(
              config.entries - config.splitLargeEntries,
              config.replacement, config.largeLog2, config.rngSeed);
          auto large_tlb = std::make_unique<FullyAssocTlb>(
              config.splitLargeEntries, config.replacement,
              config.largeLog2, config.rngSeed + 1);
          return std::make_unique<SplitTlb>(std::move(small_tlb),
                                            std::move(large_tlb),
                                            config.largeLog2);
      }

      case TlbOrganization::TwoLevel: {
          auto l1 = std::make_unique<FullyAssocTlb>(
              config.l1Entries, config.replacement, config.largeLog2,
              config.rngSeed);
          auto l2 = std::make_unique<FullyAssocTlb>(
              config.entries, config.replacement, config.largeLog2,
              config.rngSeed + 1);
          return std::make_unique<TwoLevelTlb>(std::move(l1),
                                               std::move(l2));
      }

      case TlbOrganization::Victim: {
          auto primary = std::make_unique<FullyAssocTlb>(
              config.entries, config.replacement, config.largeLog2,
              config.rngSeed);
          return std::make_unique<VictimTlb>(std::move(primary),
                                             config.victimEntries,
                                             config.largeLog2);
      }
    }
    tps_panic("unreachable TLB organization");
}

} // namespace tps
