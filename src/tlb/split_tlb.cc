#include "tlb/split_tlb.h"

#include <algorithm>

#include "util/logging.h"

namespace tps
{

SplitTlb::SplitTlb(std::unique_ptr<Tlb> small_tlb,
                   std::unique_ptr<Tlb> large_tlb, unsigned large_log2)
    : small_(std::move(small_tlb)), large_(std::move(large_tlb)),
      large_log2_(large_log2)
{
    if (!small_ || !large_)
        tps_fatal("SplitTlb requires two sub-TLBs");
}

bool
SplitTlb::access(const PageId &page, Addr vaddr)
{
    Tlb &target = page.sizeLog2 >= large_log2_ ? *large_ : *small_;
    return target.access(page, vaddr);
}

void
SplitTlb::lookupBatch(const BatchRef *refs, std::size_t n,
                      BatchResult &out)
{
    // The two sub-TLBs share no state, so a stable partition by page
    // size replayed through each sub-TLB in order is indistinguishable
    // from the interleaved per-reference stream.
    out.hit.resize(n);
    part_refs_[0].clear();
    part_refs_[1].clear();
    part_index_[0].clear();
    part_index_[1].clear();
    for (std::size_t i = 0; i < n; ++i) {
        const int side = refs[i].page.sizeLog2 >= large_log2_ ? 1 : 0;
        part_refs_[side].push_back(refs[i]);
        part_index_[side].push_back(static_cast<std::uint32_t>(i));
    }
    for (int side = 0; side < 2; ++side) {
        if (part_refs_[side].empty())
            continue;
        Tlb &target = side == 1 ? *large_ : *small_;
        target.lookupBatch(part_refs_[side].data(),
                           part_refs_[side].size(), part_result_);
        for (std::size_t j = 0; j < part_index_[side].size(); ++j)
            out.hit[part_index_[side][j]] = part_result_.hit[j];
    }
}

void
SplitTlb::invalidatePage(const PageId &page)
{
    Tlb &target = page.sizeLog2 >= large_log2_ ? *large_ : *small_;
    target.invalidatePage(page);
}

void
SplitTlb::invalidateAll()
{
    small_->invalidateAll();
    large_->invalidateAll();
}

void
SplitTlb::invalidateAsid(std::uint16_t asid)
{
    small_->invalidateAsid(asid);
    large_->invalidateAsid(asid);
}

void
SplitTlb::setAsid(std::uint16_t asid)
{
    asid_ = asid;
    small_->setAsid(asid);
    large_->setAsid(asid);
}

void
SplitTlb::reset()
{
    small_->reset();
    large_->reset();
    asid_ = 0;
}

void
SplitTlb::resetStats()
{
    small_->resetStats();
    large_->resetStats();
}

std::size_t
SplitTlb::capacity() const
{
    return small_->capacity() + large_->capacity();
}

void
SplitTlb::refreshStats() const
{
    const TlbStats &a = small_->stats();
    const TlbStats &b = large_->stats();
    combined_ = TlbStats{};
    combined_.accesses = a.accesses + b.accesses;
    combined_.hits = a.hits + b.hits;
    combined_.misses = a.misses + b.misses;
    // The small sub-TLB records everything it handles as small-size
    // (its large_log2 threshold is never crossed) and symmetrically
    // for the large sub-TLB, so the by-size split is exact:
    combined_.hitsSmall = a.hits;
    combined_.hitsLarge = b.hits;
    combined_.missesSmall = a.misses;
    combined_.missesLarge = b.misses;
    combined_.fills = a.fills + b.fills;
    combined_.evictions = a.evictions + b.evictions;
    combined_.invalidations = a.invalidations + b.invalidations;
}

const TlbStats &
SplitTlb::stats() const
{
    refreshStats();
    return combined_;
}

Tlb::ReachSnapshot
SplitTlb::reachSnapshot() const
{
    const ReachSnapshot a = small_->reachSnapshot();
    const ReachSnapshot b = large_->reachSnapshot();
    ReachSnapshot merged;
    merged.reachBytes = a.reachBytes + b.reachBytes;
    merged.sets = a.sets + b.sets;
    merged.fullSets = a.fullSets + b.fullSets;
    merged.setOccupancy.assign(
        std::max(a.setOccupancy.size(), b.setOccupancy.size()), 0);
    for (std::size_t k = 0; k < a.setOccupancy.size(); ++k)
        merged.setOccupancy[k] += a.setOccupancy[k];
    for (std::size_t k = 0; k < b.setOccupancy.size(); ++k)
        merged.setOccupancy[k] += b.setOccupancy[k];
    return merged;
}

void
SplitTlb::setEventSink(obs::EventLogRecorder *recorder,
                       const std::string &tag)
{
    const std::string prefix = tag.empty() ? "" : tag + ".";
    small_->setEventSink(recorder, prefix + "small");
    large_->setEventSink(recorder, prefix + "large");
}

std::string
SplitTlb::name() const
{
    return "split[" + small_->name() + " | " + large_->name() + "]";
}

} // namespace tps
