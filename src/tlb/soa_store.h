/**
 * @file
 * Structure-of-arrays entry storage shared by the associative TLB
 * organizations (DESIGN.md §11).
 *
 * The array-of-structs TlbEntry layout costs 32 bytes per entry and a
 * branchy compare per way; a 64-entry fully associative probe walks
 * 2KB of memory per reference.  Splitting the entry into parallel
 * arrays — one 64-bit vpn lane and one packed 32-bit meta word
 * (valid bit | ASID | page-size exponent) — lets the match loop read
 * 12 bytes per way with no data-dependent branches, which compilers
 * vectorize.  Replacement metadata (lastUse/inserted) lives in its own
 * arrays and is only touched on the hit/fill paths.
 *
 * Semantics are bit-identical to the TlbEntry path: the probe helpers
 * mirror TlbEntry::matches() and chooseVictim() (replacement.h)
 * exactly, including tie-breaking order and when the Random policy's
 * rng is consumed.
 */

#ifndef TPS_TLB_SOA_STORE_H_
#define TPS_TLB_SOA_STORE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "tlb/replacement.h"
#include "tlb/tlb_entry.h"
#include "util/random.h"
#include "vm/page.h"

namespace tps::detail
{

/**
 * Packed tag-extension word: valid bit 31, ASID in bits 8..23, page
 * size exponent in bits 0..7.  An invalid entry is all-zero, so one
 * 32-bit equality against packMeta(asid, sizeLog2) implements
 * TlbEntry::matches() minus the vpn compare.
 */
inline std::uint32_t
packMeta(std::uint16_t asid, std::uint8_t size_log2)
{
    return (std::uint32_t{1} << 31) | (std::uint32_t{asid} << 8) |
           std::uint32_t{size_log2};
}

inline constexpr std::uint32_t kSoaValidBit = std::uint32_t{1} << 31;

/** ASID field of a packed meta word. */
inline std::uint16_t
metaAsid(std::uint32_t meta)
{
    return static_cast<std::uint16_t>((meta >> 8) & 0xffff);
}

/** Parallel entry arrays for a group of `size()` entries. */
struct SoaStore
{
    std::vector<Addr> vpn;
    std::vector<std::uint32_t> meta; ///< 0 = invalid (see packMeta)
    std::vector<RefTime> lastUse;
    std::vector<RefTime> inserted;

    explicit SoaStore(std::size_t entries = 0) { resize(entries); }

    void
    resize(std::size_t entries)
    {
        vpn.assign(entries, 0);
        meta.assign(entries, 0);
        lastUse.assign(entries, 0);
        inserted.assign(entries, 0);
    }

    std::size_t size() const { return meta.size(); }

    void
    clear()
    {
        std::fill(vpn.begin(), vpn.end(), 0);
        std::fill(meta.begin(), meta.end(), 0);
        std::fill(lastUse.begin(), lastUse.end(), 0);
        std::fill(inserted.begin(), inserted.end(), 0);
    }

    void
    invalidate(std::size_t i)
    {
        meta[i] = 0;
    }

    bool valid(std::size_t i) const { return meta[i] != 0; }

    void
    fill(std::size_t i, const PageId &page, std::uint16_t asid,
         RefTime clock)
    {
        vpn[i] = page.vpn;
        meta[i] = packMeta(asid, page.sizeLog2);
        lastUse[i] = clock;
        inserted[i] = clock;
    }

    /** PageId stored at @p i (meaningful only while valid). */
    PageId
    pageAt(std::size_t i) const
    {
        return PageId{vpn[i],
                      static_cast<std::uint8_t>(meta[i] & 0xff)};
    }
};

/**
 * Index of the entry matching (want_meta, want_vpn) in
 * [first, first+count), or -1.  Branch-free over the candidates so the
 * compiler can vectorize; correctness relies on at most one match,
 * which every organization guarantees (a page is filled only after a
 * whole-group probe missed, and shootdowns remove all copies).
 */
inline long
soaFindMatch(const SoaStore &store, std::size_t first, std::size_t count,
             std::uint32_t want_meta, Addr want_vpn)
{
    const std::uint32_t *meta = store.meta.data() + first;
    const Addr *vpn = store.vpn.data() + first;
    long found = -1;
    for (std::size_t i = 0; i < count; ++i) {
        const bool match = (meta[i] == want_meta) & (vpn[i] == want_vpn);
        if (match)
            found = static_cast<long>(i);
    }
    return found;
}

/**
 * chooseVictim() (replacement.h) transliterated to the SoA layout:
 * first invalid entry wins, then the policy decides.  The Random
 * policy consumes its rng only when no invalid entry exists — the
 * consumption order is part of the determinism contract.
 */
inline std::size_t
soaChooseVictim(const SoaStore &store, std::size_t first,
                std::size_t count, ReplPolicy policy, Rng &rng,
                const PlruTree &plru)
{
    const std::uint32_t *meta = store.meta.data() + first;
    for (std::size_t i = 0; i < count; ++i)
        if (meta[i] == 0)
            return i;

    if (policy == ReplPolicy::TreePLRU)
        return plru.victim(count);

    switch (policy) {
      case ReplPolicy::LRU: {
          const RefTime *last = store.lastUse.data() + first;
          std::size_t victim = 0;
          for (std::size_t i = 1; i < count; ++i)
              if (last[i] < last[victim])
                  victim = i;
          return victim;
      }
      case ReplPolicy::FIFO: {
          const RefTime *ins = store.inserted.data() + first;
          std::size_t victim = 0;
          for (std::size_t i = 1; i < count; ++i)
              if (ins[i] < ins[victim])
                  victim = i;
          return victim;
      }
      case ReplPolicy::Random:
        return static_cast<std::size_t>(rng.below(count));
      case ReplPolicy::TreePLRU:
        break; // handled above
    }
    return 0;
}

} // namespace tps::detail

#endif // TPS_TLB_SOA_STORE_H_
