/**
 * @file
 * Split TLBs: a separate TLB per page size (paper Section 2.2,
 * exact-index option (c); cf. the Intel i860 XP's 64-entry 4KB TLB +
 * 16-entry 4MB TLB, and HP PA-RISC 1.1's Block TLB).
 *
 * Both sub-TLBs are probed in parallel with the appropriate page
 * number, so lookup cost matches a single TLB; the drawback the paper
 * notes is stranded capacity when pages are not distributed across the
 * two sizes the way the hardware split assumed.
 */

#ifndef TPS_TLB_SPLIT_TLB_H_
#define TPS_TLB_SPLIT_TLB_H_

#include <memory>
#include <vector>

#include "tlb/tlb.h"

namespace tps
{

/** Two-page-size TLB built from one sub-TLB per size. */
class SplitTlb : public Tlb
{
  public:
    /**
     * @param small_tlb handles every page with sizeLog2 < large_log2
     * @param large_tlb handles the rest
     */
    SplitTlb(std::unique_ptr<Tlb> small_tlb, std::unique_ptr<Tlb> large_tlb,
             unsigned large_log2 = kLog2_32K);

    bool access(const PageId &page, Addr vaddr) override;
    void lookupBatch(const BatchRef *refs, std::size_t n,
                     BatchResult &out) override;
    void invalidatePage(const PageId &page) override;
    void invalidateAll() override;
    void invalidateAsid(std::uint16_t asid) override;
    void setAsid(std::uint16_t asid) override;
    void reset() override;
    void resetStats() override;
    std::size_t capacity() const override;
    const TlbStats &stats() const override;
    std::string name() const override;

    const Tlb &smallTlb() const { return *small_; }
    const Tlb &largeTlb() const { return *large_; }

    /** Merged over both sub-TLBs (their sets are disjoint hardware). */
    ReachSnapshot reachSnapshot() const override;

    /** Forwards with tags "small"/"large" (prefixed by @p tag): one
     *  eviction stream per sub, since batching partitions refs across
     *  subs but never reorders within one. */
    void setEventSink(obs::EventLogRecorder *recorder,
                      const std::string &tag) override;

  private:
    /** Recompute the combined stats from the sub-TLBs. */
    void refreshStats() const;

    std::unique_ptr<Tlb> small_;
    std::unique_ptr<Tlb> large_;
    unsigned large_log2_;
    mutable TlbStats combined_;

    // lookupBatch() scratch, reused across calls: the batch is stably
    // partitioned per sub-TLB and outcomes scattered back by index.
    std::vector<BatchRef> part_refs_[2];
    std::vector<std::uint32_t> part_index_[2];
    BatchResult part_result_;
};

} // namespace tps

#endif // TPS_TLB_SPLIT_TLB_H_
