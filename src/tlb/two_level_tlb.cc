#include "tlb/two_level_tlb.h"

#include "util/logging.h"

namespace tps
{

TwoLevelTlb::TwoLevelTlb(std::unique_ptr<Tlb> l1,
                         std::unique_ptr<Tlb> l2)
    : l1_(std::move(l1)), l2_(std::move(l2))
{
    if (!l1_ || !l2_)
        tps_fatal("TwoLevelTlb requires both levels");
    if (l1_->capacity() >= l2_->capacity())
        tps_fatal("L1 TLB (", l1_->capacity(),
                  " entries) should be smaller than L2 (",
                  l2_->capacity(), ")");
}

bool
TwoLevelTlb::access(const PageId &page, Addr vaddr)
{
    ++stats_.accesses;
    const bool is_large = page.sizeLog2 >= kLog2_32K;

    if (l1_->access(page, vaddr)) {
        ++level_stats_.l1Hits;
        ++stats_.hits;
        (is_large ? stats_.hitsLarge : stats_.hitsSmall) += 1;
        return true;
    }
    // L1 missed and already refilled itself; classify via L2.
    if (l2_->access(page, vaddr)) {
        ++level_stats_.l2Hits;
        ++stats_.hits;
        (is_large ? stats_.hitsLarge : stats_.hitsSmall) += 1;
        return true;
    }
    ++level_stats_.l2Misses;
    ++stats_.misses;
    (is_large ? stats_.missesLarge : stats_.missesSmall) += 1;
    ++stats_.fills;
    return false;
}

void
TwoLevelTlb::lookupBatch(const BatchRef *refs, std::size_t n,
                         BatchResult &out)
{
    // The levels never exchange state during lookups (each refills
    // itself on its own miss), so L1 may consume the whole batch first
    // and L2 then replays exactly the L1-miss subsequence, in order —
    // the same streams each level sees under per-reference access().
    out.hit.resize(n);
    l1_->lookupBatch(refs, n, l1_result_);
    l2_refs_.clear();
    l2_index_.clear();
    for (std::size_t i = 0; i < n; ++i) {
        ++stats_.accesses;
        if (l1_result_.hit[i]) {
            const bool is_large = refs[i].page.sizeLog2 >= kLog2_32K;
            ++level_stats_.l1Hits;
            ++stats_.hits;
            (is_large ? stats_.hitsLarge : stats_.hitsSmall) += 1;
            out.hit[i] = 1;
        } else {
            l2_refs_.push_back(refs[i]);
            l2_index_.push_back(static_cast<std::uint32_t>(i));
        }
    }
    if (l2_refs_.empty())
        return;
    l2_->lookupBatch(l2_refs_.data(), l2_refs_.size(), l2_result_);
    for (std::size_t j = 0; j < l2_refs_.size(); ++j) {
        const bool is_large = l2_refs_[j].page.sizeLog2 >= kLog2_32K;
        if (l2_result_.hit[j]) {
            ++level_stats_.l2Hits;
            ++stats_.hits;
            (is_large ? stats_.hitsLarge : stats_.hitsSmall) += 1;
            out.hit[l2_index_[j]] = 1;
        } else {
            ++level_stats_.l2Misses;
            ++stats_.misses;
            (is_large ? stats_.missesLarge : stats_.missesSmall) += 1;
            ++stats_.fills;
            out.hit[l2_index_[j]] = 0;
        }
    }
}

void
TwoLevelTlb::invalidatePage(const PageId &page)
{
    l1_->invalidatePage(page);
    l2_->invalidatePage(page);
    // Count shootdowns once at the hierarchy level.
    stats_.invalidations =
        l1_->stats().invalidations + l2_->stats().invalidations;
}

void
TwoLevelTlb::invalidateAll()
{
    l1_->invalidateAll();
    l2_->invalidateAll();
    stats_.invalidations =
        l1_->stats().invalidations + l2_->stats().invalidations;
}

void
TwoLevelTlb::invalidateAsid(std::uint16_t asid)
{
    l1_->invalidateAsid(asid);
    l2_->invalidateAsid(asid);
    stats_.invalidations =
        l1_->stats().invalidations + l2_->stats().invalidations;
}

void
TwoLevelTlb::setAsid(std::uint16_t asid)
{
    asid_ = asid;
    l1_->setAsid(asid);
    l2_->setAsid(asid);
}

void
TwoLevelTlb::reset()
{
    l1_->reset();
    l2_->reset();
    level_stats_ = TwoLevelStats{};
    stats_ = TlbStats{};
    asid_ = 0;
}

void
TwoLevelTlb::resetStats()
{
    l1_->resetStats();
    l2_->resetStats();
    level_stats_ = TwoLevelStats{};
    stats_ = TlbStats{};
}

std::size_t
TwoLevelTlb::capacity() const
{
    return l2_->capacity(); // inclusion: L2 bounds reach
}

const TlbStats &
TwoLevelTlb::stats() const
{
    return stats_;
}

Tlb::ReachSnapshot
TwoLevelTlb::reachSnapshot() const
{
    return l2_->reachSnapshot();
}

void
TwoLevelTlb::setEventSink(obs::EventLogRecorder *recorder,
                          const std::string &tag)
{
    const std::string prefix = tag.empty() ? "" : tag + ".";
    l1_->setEventSink(recorder, prefix + "l1");
    l2_->setEventSink(recorder, prefix + "l2");
}

std::string
TwoLevelTlb::name() const
{
    return "L1[" + l1_->name() + "] + L2[" + l2_->name() + "]";
}

} // namespace tps
