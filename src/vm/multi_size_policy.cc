#include "vm/multi_size_policy.h"

#include "util/format.h"
#include "util/logging.h"

namespace tps
{

MultiSizePolicy::MultiSizePolicy(const MultiSizeConfig &config)
    : config_(config)
{
    const auto &sizes = config.sizeLog2s;
    if (sizes.size() < 2 || sizes.size() > 4)
        tps_fatal("MultiSizePolicy supports 2..4 levels, got ",
                  sizes.size());
    for (std::size_t k = 0; k + 1 < sizes.size(); ++k) {
        if (sizes[k + 1] <= sizes[k])
            tps_fatal("page sizes must be strictly ascending");
        if (sizes[k + 1] - sizes[k] > 6)
            tps_fatal("level fanout above 64 children unsupported");
    }
    if (config.window == 0)
        tps_fatal("window must be positive");
    if (config.thresholdNum == 0 ||
        config.thresholdNum > config.thresholdDen)
        tps_fatal("threshold fraction must be in (0, 1]");
    levels_.resize(sizes.size() - 1);
    refs_per_level_.assign(sizes.size(), 0);
}

unsigned
MultiSizePolicy::activeChildren(const NodeState &node, RefTime now,
                                std::size_t level) const
{
    const unsigned children = config_.fanout(level);
    unsigned active = 0;
    for (unsigned c = 0; c < children; ++c) {
        const RefTime last = node.lastRef[c];
        if (last == 0)
            continue;
        // Transition 0 counts *recent* blocks (windowed, as in
        // Section 3.4); higher transitions count *promoted* children,
        // which is permanent under the no-demotion default.
        if (level == 0 ? (now - last < config_.window) : true)
            ++active;
    }
    return active;
}

void
MultiSizePolicy::promote(std::size_t level, Addr parent_number)
{
    NodeState &node = levels_[level][parent_number];
    if (node.promoted)
        return;
    node.promoted = true;
    ++stats_.promotions;
    if (life_ != nullptr)
        life_->onPromote(parent_number, config_.sizeLog2s[level],
                         config_.sizeLog2s[level + 1]);

    if (sink_ != nullptr) {
        // Invalidate every finer-grained translation this new page
        // subsumes, level by level.
        const unsigned parent_log2 = config_.sizeLog2s[level + 1];
        for (std::size_t child_level = 0; child_level <= level;
             ++child_level) {
            const unsigned child_log2 =
                config_.sizeLog2s[child_level];
            const Addr first = parent_number
                               << (parent_log2 - child_log2);
            const Addr count = Addr{1} << (parent_log2 - child_log2);
            for (Addr i = 0; i < count; ++i) {
                sink_->invalidatePage(PageId{
                    first + i, static_cast<std::uint8_t>(child_log2)});
            }
        }
    }

    // Mark promotion in the next level up and maybe cascade.
    if (level + 1 < levels_.size()) {
        const unsigned up_fanout_log2 =
            config_.sizeLog2s[level + 2] - config_.sizeLog2s[level + 1];
        const Addr up_parent = parent_number >> up_fanout_log2;
        const unsigned child_index = static_cast<unsigned>(
            parent_number & mask(up_fanout_log2));
        NodeState &up = levels_[level + 1][up_parent];
        if (up.lastRef[child_index] == 0) {
            up.lastRef[child_index] = 1; // permanent marker
            if (!up.promoted &&
                activeChildren(up, 0, level + 1) >=
                    config_.threshold(level + 1)) {
                promote(level + 1, up_parent);
            }
        }
    }
}

PageId
MultiSizePolicy::classify(Addr vaddr, RefTime now)
{
    // Update block recency at the finest transition.
    const Addr chunk = vaddr >> config_.sizeLog2s[1];
    NodeState &node0 = levels_[0][chunk];
    const unsigned block = static_cast<unsigned>(
        (vaddr >> config_.sizeLog2s[0]) & (config_.fanout(0) - 1));
    node0.lastRef[block] = now;
    if (!node0.promoted &&
        activeChildren(node0, now, 0) >= config_.threshold(0))
        promote(0, chunk);

    const std::size_t level = levelOf(vaddr);
    ++refs_per_level_[level];
    if (level == 0)
        ++stats_.refsSmall;
    else
        ++stats_.refsLarge;
    return pageOf(vaddr, config_.sizeLog2s[level]);
}

std::size_t
MultiSizePolicy::levelOf(Addr vaddr) const
{
    // The coarsest promoted ancestor wins.
    for (std::size_t k = levels_.size(); k-- > 0;) {
        const Addr parent = vaddr >> config_.sizeLog2s[k + 1];
        const auto it = levels_[k].find(parent);
        if (it != levels_[k].end() && it->second.promoted)
            return k + 1;
    }
    return 0;
}

void
MultiSizePolicy::setInvalidationSink(InvalidationSink *sink)
{
    sink_ = sink;
}

void
MultiSizePolicy::reset()
{
    for (LevelMap &level : levels_)
        level.clear();
    stats_ = PolicyStats{};
    refs_per_level_.assign(config_.sizeLog2s.size(), 0);
}

std::string
MultiSizePolicy::name() const
{
    std::string text;
    for (std::size_t k = 0; k < config_.sizeLog2s.size(); ++k) {
        if (k != 0)
            text += "/";
        text += formatBytes(std::uint64_t{1} << config_.sizeLog2s[k]);
    }
    return text;
}

} // namespace tps
