/**
 * @file
 * Forward page tables and a software TLB-miss-handler cost model.
 *
 * The paper assumes TLB misses are handled in software at ~20 cycles
 * for one page size and ~25 cycles (+25%) for two page sizes
 * (Section 2.3), citing SPARC assembly estimates.  This module builds
 * the data structures such a handler would walk — split per-size
 * multi-level forward tables, probed in a configurable order — and
 * measures walk costs, so those constants are grounded in a model
 * rather than asserted (see bench/ablation_penalty).
 */

#ifndef TPS_VM_PAGE_TABLE_H_
#define TPS_VM_PAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "phys/allocator.h"
#include "vm/page.h"

namespace tps
{

/** A translation held by a page table. */
struct PageTableEntry
{
    Addr pfn = 0;      ///< physical frame number (same size as the page)
    bool valid = false;
};

/**
 * A multi-level forward (radix) page table for one fixed page size.
 *
 * The virtual page number is split into `levels` roughly equal index
 * fields, walked top-down.  Each level descended counts as one memory
 * touch for the cost model.
 */
class ForwardPageTable
{
  public:
    /**
     * @param size_log2 page size this table maps
     * @param va_bits   virtual-address width covered (default 48)
     * @param levels    radix levels (default 3, SPARC-reference style)
     */
    explicit ForwardPageTable(unsigned size_log2, unsigned va_bits = 48,
                              unsigned levels = 3);

    /** Install a translation (allocating a physical frame). */
    void map(Addr vpn);

    /**
     * Acquire pfns from @p allocator instead of the internal counter
     * (nullptr restores the counter — the null-allocator behavior).
     * Existing translations keep the pfn they were minted with.
     */
    void setAllocator(phys::Allocator *allocator)
    {
        allocator_ = allocator;
    }

    /** Remove a translation; harmless if absent. */
    void unmap(Addr vpn);

    /**
     * Walk for @p vpn.
     * @param touches_out incremented by the number of table levels read
     * @return the entry, or nullptr when unmapped (partial walks still
     *         cost the levels actually descended).
     */
    const PageTableEntry *walk(Addr vpn, unsigned &touches_out) const;

    bool isMapped(Addr vpn) const;

    unsigned sizeLog2() const { return size_log2_; }
    unsigned levels() const { return static_cast<unsigned>(bits_.size()); }
    std::uint64_t mappedPages() const { return mapped_; }

    /** Bytes of table memory currently allocated (OS overhead metric). */
    std::uint64_t tableBytes() const;

  private:
    struct Node;
    using NodePtr = std::unique_ptr<Node>;

    struct Node
    {
        std::vector<NodePtr> children; // interior level
        std::vector<PageTableEntry> leaves; // leaf level
    };

    Node *ensureChild(Node &parent, std::size_t index, unsigned depth);
    unsigned indexAt(Addr vpn, unsigned depth) const;

    unsigned size_log2_;
    std::vector<unsigned> bits_;   ///< index bits per level, top-down
    std::vector<unsigned> shifts_; ///< shift per level, top-down
    NodePtr root_;
    phys::Allocator *allocator_ = nullptr;
    Addr next_pfn_ = 1;
    std::uint64_t mapped_ = 0;
    std::uint64_t nodes_allocated_ = 0;
};

/** Which table a two-size handler probes first. */
enum class ProbeOrder : std::uint8_t
{
    SmallFirst,
    LargeFirst,
};

/** Cycle-cost parameters of the software miss handler. */
struct HandlerCostModel
{
    Cycles trapOverhead = 8;   ///< save/restore, dispatch
    Cycles perTouch = 4;       ///< one page-table memory read
    Cycles sizeCheck = 1;      ///< per probe: discriminate page size

    /** Cost of a single-size walk that descends @p touches levels. */
    Cycles
    singleSizeCost(unsigned touches) const
    {
        return trapOverhead + perTouch * touches;
    }
};

/** Outcome of one simulated software miss handling. */
struct WalkResult
{
    bool found = false;
    unsigned touches = 0; ///< page-table reads performed
    Cycles cycles = 0;    ///< modelled handler cost
    bool faulted = false; ///< translation had to be created first
};

/**
 * The OS view of memory for the two-page-size study: one table per
 * page size plus the software handler that probes them.  Mirrors the
 * policy's promotions/demotions via remapChunk().
 */
class AddressSpace
{
  public:
    AddressSpace(unsigned small_log2, unsigned large_log2,
                 HandlerCostModel costs = {});

    /**
     * Handle a TLB miss for @p page (as classified by the policy),
     * creating the mapping on first touch (a demand "page fault", not
     * charged to the TLB handler cost).
     *
     * @param order probe order used by the handler when the size is
     *              unknown; determines the modelled cycle cost.
     */
    WalkResult handleMiss(const PageId &page, ProbeOrder order);

    /** Single-size variant: the handler knows the page size a priori. */
    WalkResult handleMissSingleSize(const PageId &page);

    /**
     * Reflect a chunk promotion (to_large) or demotion in the tables:
     * unmap the old-size pages, map the new-size page(s) covering the
     * chunk.
     */
    void remapChunk(Addr chunk_number, bool to_large);

    /** Route both tables' frame acquisition through @p allocator
     *  (nullptr = the historical per-table counters). */
    void
    setAllocator(phys::Allocator *allocator)
    {
        small_.setAllocator(allocator);
        large_.setAllocator(allocator);
    }

    const ForwardPageTable &smallTable() const { return small_; }
    const ForwardPageTable &largeTable() const { return large_; }

    /** Running average handler cost in cycles. */
    double averageMissCycles() const;
    std::uint64_t missesHandled() const { return misses_; }
    std::uint64_t faults() const { return faults_; }

  private:
    unsigned small_log2_;
    unsigned large_log2_;
    HandlerCostModel costs_;
    ForwardPageTable small_;
    ForwardPageTable large_;
    std::uint64_t misses_ = 0;
    std::uint64_t faults_ = 0;
    Cycles total_cycles_ = 0;
};

} // namespace tps

#endif // TPS_VM_PAGE_TABLE_H_
