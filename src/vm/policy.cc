#include "vm/policy.h"

#include "util/format.h"
#include "util/logging.h"

namespace tps
{

void
PolicyStats::exportTo(obs::StatRegistry &registry,
                      const std::string &prefix) const
{
    registry.addCounter(prefix + ".refs_small", refsSmall);
    registry.addCounter(prefix + ".refs_large", refsLarge);
    registry.addCounter(prefix + ".promotions", promotions);
    registry.addCounter(prefix + ".demotions", demotions);
    registry.addValue(prefix + ".large_fraction", largeFraction());
}

PolicyStats
PolicyStats::deltaSince(const PolicyStats &since) const
{
    PolicyStats delta;
    delta.refsSmall = refsSmall - since.refsSmall;
    delta.refsLarge = refsLarge - since.refsLarge;
    delta.promotions = promotions - since.promotions;
    delta.demotions = demotions - since.demotions;
    return delta;
}

SingleSizePolicy::SingleSizePolicy(unsigned size_log2)
    : size_log2_(size_log2)
{
    if (size_log2 < 9 || size_log2 > 30)
        tps_fatal("implausible page size 2^", size_log2);
}

void
SingleSizePolicy::setInvalidationSink(InvalidationSink *sink)
{
    // A single-size mapping never changes, so there is never anything
    // to invalidate.
    (void)sink;
}

void
SingleSizePolicy::reset()
{
    stats_ = PolicyStats{};
}

std::string
SingleSizePolicy::name() const
{
    return formatBytes(std::uint64_t{1} << size_log2_);
}

} // namespace tps
