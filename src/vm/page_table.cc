#include "vm/page_table.h"

#include "util/logging.h"

namespace tps
{

ForwardPageTable::ForwardPageTable(unsigned size_log2, unsigned va_bits,
                                   unsigned levels)
    : size_log2_(size_log2)
{
    if (levels == 0 || levels > 6)
        tps_fatal("page table levels must be in [1,6], got ", levels);
    if (va_bits <= size_log2)
        tps_fatal("va_bits (", va_bits, ") must exceed page size bits (",
                  size_log2, ")");
    const unsigned vpn_bits = va_bits - size_log2;

    // Split vpn_bits into `levels` fields, giving the remainder to the
    // top level (like SPARC/x86 tables, the root is the odd one out).
    const unsigned base = vpn_bits / levels;
    unsigned top = vpn_bits - base * (levels - 1);
    bits_.push_back(top);
    for (unsigned i = 1; i < levels; ++i)
        bits_.push_back(base);

    unsigned shift = vpn_bits;
    for (unsigned b : bits_) {
        shift -= b;
        shifts_.push_back(shift);
    }

    root_ = std::make_unique<Node>();
    ++nodes_allocated_;
    if (levels == 1)
        root_->leaves.resize(std::size_t{1} << bits_[0]);
    else
        root_->children.resize(std::size_t{1} << bits_[0]);
}

unsigned
ForwardPageTable::indexAt(Addr vpn, unsigned depth) const
{
    return static_cast<unsigned>((vpn >> shifts_[depth]) &
                                 mask(bits_[depth]));
}

ForwardPageTable::Node *
ForwardPageTable::ensureChild(Node &parent, std::size_t index,
                              unsigned depth)
{
    NodePtr &slot = parent.children[index];
    if (!slot) {
        slot = std::make_unique<Node>();
        ++nodes_allocated_;
        const unsigned child_depth = depth + 1;
        if (child_depth == levels() - 1)
            slot->leaves.resize(std::size_t{1} << bits_[child_depth]);
        else
            slot->children.resize(std::size_t{1} << bits_[child_depth]);
    }
    return slot.get();
}

void
ForwardPageTable::map(Addr vpn)
{
    Node *node = root_.get();
    for (unsigned depth = 0; depth + 1 < levels(); ++depth)
        node = ensureChild(*node, indexAt(vpn, depth), depth);
    PageTableEntry &pte = node->leaves[indexAt(vpn, levels() - 1)];
    if (!pte.valid) {
        pte.valid = true;
        pte.pfn = allocator_ != nullptr
                      ? allocator_->frameFor(vpn, size_log2_)
                      : next_pfn_++;
        ++mapped_;
    }
}

void
ForwardPageTable::unmap(Addr vpn)
{
    Node *node = root_.get();
    for (unsigned depth = 0; depth + 1 < levels(); ++depth) {
        NodePtr &slot = node->children[indexAt(vpn, depth)];
        if (!slot)
            return;
        node = slot.get();
    }
    PageTableEntry &pte = node->leaves[indexAt(vpn, levels() - 1)];
    if (pte.valid) {
        pte.valid = false;
        --mapped_;
    }
}

const PageTableEntry *
ForwardPageTable::walk(Addr vpn, unsigned &touches_out) const
{
    const Node *node = root_.get();
    for (unsigned depth = 0; depth + 1 < levels(); ++depth) {
        ++touches_out; // read the interior descriptor
        const NodePtr &slot = node->children[indexAt(vpn, depth)];
        if (!slot)
            return nullptr;
        node = slot.get();
    }
    ++touches_out; // read the leaf PTE
    const PageTableEntry &pte = node->leaves[indexAt(vpn, levels() - 1)];
    return pte.valid ? &pte : nullptr;
}

bool
ForwardPageTable::isMapped(Addr vpn) const
{
    unsigned touches = 0;
    return walk(vpn, touches) != nullptr;
}

std::uint64_t
ForwardPageTable::tableBytes() const
{
    // Model each interior descriptor and each PTE as 8 bytes; a node's
    // footprint is its fan-out times that.  Count via allocation trace.
    std::uint64_t bytes = 0;
    // Recompute by walking would be costly; approximate with per-level
    // fan-out times allocated node count is wrong when levels differ in
    // width, so track precisely: every allocated node at depth d has
    // 2^bits_[d] slots.  nodes_allocated_ does not record depth, so
    // recurse instead (tables are small).
    struct Walker
    {
        const ForwardPageTable &table;
        std::uint64_t bytes = 0;

        void
        visit(const Node &node, unsigned depth)
        {
            bytes += (std::uint64_t{1} << table.bits_[depth]) * 8;
            if (depth + 1 < table.levels()) {
                for (const NodePtr &child : node.children)
                    if (child)
                        visit(*child, depth + 1);
            }
        }
    } walker{*this};
    walker.visit(*root_, 0);
    bytes = walker.bytes;
    return bytes;
}

AddressSpace::AddressSpace(unsigned small_log2, unsigned large_log2,
                           HandlerCostModel costs)
    : small_log2_(small_log2), large_log2_(large_log2), costs_(costs),
      small_(small_log2), large_(large_log2)
{
    if (large_log2 <= small_log2)
        tps_fatal("AddressSpace: large page must exceed small page");
}

WalkResult
AddressSpace::handleMissSingleSize(const PageId &page)
{
    ForwardPageTable &table =
        page.sizeLog2 == small_log2_ ? small_ : large_;
    WalkResult result;
    const PageTableEntry *pte = table.walk(page.vpn, result.touches);
    if (pte == nullptr) {
        // Demand fault: create the mapping, then count the (re)walk.
        table.map(page.vpn);
        result.faulted = true;
        ++faults_;
        result.touches = 0;
        pte = table.walk(page.vpn, result.touches);
    }
    result.found = pte != nullptr;
    result.cycles = costs_.singleSizeCost(result.touches);
    ++misses_;
    total_cycles_ += result.cycles;
    return result;
}

WalkResult
AddressSpace::handleMiss(const PageId &page, ProbeOrder order)
{
    const bool is_small = page.sizeLog2 == small_log2_;
    ForwardPageTable &own = is_small ? small_ : large_;
    if (!own.isMapped(page.vpn)) {
        own.map(page.vpn);
        ++faults_;
    }

    WalkResult result;
    result.faulted = false;

    const Addr small_vpn =
        is_small ? page.vpn
                 : page.vpn << (large_log2_ - small_log2_); // any block
    const Addr large_vpn =
        is_small ? page.vpn >> (large_log2_ - small_log2_) : page.vpn;

    auto probe = [&](ForwardPageTable &table, Addr vpn) -> bool {
        const PageTableEntry *pte = table.walk(vpn, result.touches);
        result.cycles += costs_.sizeCheck;
        return pte != nullptr;
    };

    bool hit_first;
    if (order == ProbeOrder::SmallFirst) {
        hit_first = probe(small_, small_vpn);
        if (!hit_first)
            result.found = probe(large_, large_vpn);
        else
            result.found = true;
    } else {
        hit_first = probe(large_, large_vpn);
        if (!hit_first)
            result.found = probe(small_, small_vpn);
        else
            result.found = true;
    }

    result.cycles += costs_.trapOverhead +
                     costs_.perTouch * result.touches;
    ++misses_;
    total_cycles_ += result.cycles;
    return result;
}

void
AddressSpace::remapChunk(Addr chunk_number, bool to_large)
{
    const unsigned ratio_log2 = large_log2_ - small_log2_;
    const Addr first_small = chunk_number << ratio_log2;
    const Addr block_count = Addr{1} << ratio_log2;
    if (to_large) {
        for (Addr b = 0; b < block_count; ++b)
            small_.unmap(first_small + b);
        large_.map(chunk_number);
    } else {
        large_.unmap(chunk_number);
        for (Addr b = 0; b < block_count; ++b)
            small_.map(first_small + b);
    }
}

double
AddressSpace::averageMissCycles() const
{
    return misses_ == 0 ? 0.0
                        : static_cast<double>(total_cycles_) /
                              static_cast<double>(misses_);
}

} // namespace tps
