/**
 * @file
 * The paper's dynamic page-size assignment policy (Section 3.4).
 *
 * The virtual address space is viewed as chunks of the large page size,
 * each consisting of 2^(largeLog2-smallLog2) blocks of the small page
 * size.  A chunk is mapped as one large page when at least
 * `promoteThreshold` of its blocks were accessed within the last T
 * references; otherwise its blocks are mapped as individual small
 * pages.  The paper promotes at "half or more of the blocks", which
 * bounds the working-set inflation at 2x.
 *
 * Promotion invalidates the chunk's small-page TLB entries (the real OS
 * would also copy/zero pages — a cost the paper folds into the higher
 * two-page-size miss penalty, and which we surface via PolicyStats so
 * the CPI model can charge it explicitly in the ablation benches).
 * Demotion happens when the active-block count falls below
 * `demoteThreshold` and invalidates the large-page entry.
 */

#ifndef TPS_VM_TWO_SIZE_POLICY_H_
#define TPS_VM_TWO_SIZE_POLICY_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "vm/policy.h"

namespace tps
{

/** Knobs for TwoSizePolicy. */
struct TwoSizeConfig
{
    unsigned smallLog2 = kLog2_4K;
    unsigned largeLog2 = kLog2_32K;

    /** The working-set window T, in references. */
    RefTime window = 200'000;

    /**
     * Promote when at least this many blocks are active; 0 selects the
     * paper's default of half the blocks in a chunk.
     */
    unsigned promoteThreshold = 0;

    /**
     * Demote when fewer than this many blocks are active; 0 (the
     * default) disables demotion entirely.
     *
     * Default rationale: at the paper's scale (T = 10M refs) a
     * program's sweep period is well inside the window, so promoted
     * chunks stay promoted; at our scaled-down windows an
     * equal-threshold demotion rule would demote every chunk on each
     * return and re-promote it four blocks later, churning
     * invalidations the paper's setup never saw (and a real OS would
     * not demote until memory pressure anyway).  The demotion path is
     * exercised by bench/ablation_threshold and the unit tests.
     */
    unsigned demoteThreshold = 0;

    unsigned blocksPerChunk() const { return 1u << (largeLog2 - smallLog2); }

    /** Promote threshold with the 0-default resolved. */
    unsigned resolvedPromote() const;
};

/** Maximum supported blocks per chunk (4KB small / 256KB large). */
inline constexpr unsigned kMaxBlocksPerChunk = 64;

/**
 * Dynamic two-page-size assignment per the paper's Section 3.4.
 */
class TwoSizePolicy : public PageSizePolicy
{
  public:
    explicit TwoSizePolicy(const TwoSizeConfig &config);

    PageId classify(Addr vaddr, RefTime now) override;
    void setInvalidationSink(InvalidationSink *sink) override;
    void reset() override;
    void resetStats() override { stats_ = PolicyStats{}; }
    const PolicyStats &stats() const override { return stats_; }
    std::string name() const override;
    bool isMultiSize() const override { return true; }

    const TwoSizeConfig &config() const { return config_; }

    /** Is the chunk containing @p vaddr currently mapped large? */
    bool isLargeMapped(Addr vaddr) const;

    /** Number of chunks that have ever been touched. */
    std::size_t trackedChunks() const { return chunks_.size(); }

  private:
    /** Per-chunk recency state. */
    struct ChunkState
    {
        std::array<RefTime, kMaxBlocksPerChunk> lastRef{}; // 0 = never
        bool large = false;
    };

    /** Blocks of @p state accessed within the window ending at @p now. */
    unsigned activeBlocks(const ChunkState &state, RefTime now) const;

    void promote(Addr chunk_number, ChunkState &state);
    void demote(Addr chunk_number, ChunkState &state);

    TwoSizeConfig config_;
    unsigned promote_threshold_;
    unsigned demote_threshold_;
    unsigned blocks_per_chunk_;
    InvalidationSink *sink_ = nullptr;
    std::unordered_map<Addr, ChunkState> chunks_;
    PolicyStats stats_;
};

} // namespace tps

#endif // TPS_VM_TWO_SIZE_POLICY_H_
