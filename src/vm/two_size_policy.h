/**
 * @file
 * The paper's dynamic page-size assignment policy (Section 3.4).
 *
 * The virtual address space is viewed as chunks of the large page size,
 * each consisting of 2^(largeLog2-smallLog2) blocks of the small page
 * size.  A chunk is mapped as one large page when at least
 * `promoteThreshold` of its blocks were accessed within the last T
 * references; otherwise its blocks are mapped as individual small
 * pages.  The paper promotes at "half or more of the blocks", which
 * bounds the working-set inflation at 2x.
 *
 * Promotion invalidates the chunk's small-page TLB entries (the real OS
 * would also copy/zero pages — a cost the paper folds into the higher
 * two-page-size miss penalty, and which we surface via PolicyStats so
 * the CPI model can charge it explicitly in the ablation benches).
 * Demotion happens when the active-block count falls below
 * `demoteThreshold` and invalidates the large-page entry.
 */

#ifndef TPS_VM_TWO_SIZE_POLICY_H_
#define TPS_VM_TWO_SIZE_POLICY_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "vm/policy.h"

namespace tps
{

/** Knobs for TwoSizePolicy. */
struct TwoSizeConfig
{
    unsigned smallLog2 = kLog2_4K;
    unsigned largeLog2 = kLog2_32K;

    /** The working-set window T, in references. */
    RefTime window = 200'000;

    /**
     * Promote when at least this many blocks are active; 0 selects the
     * paper's default of half the blocks in a chunk.
     */
    unsigned promoteThreshold = 0;

    /**
     * Demote when fewer than this many blocks are active; 0 (the
     * default) disables demotion entirely.
     *
     * Default rationale: at the paper's scale (T = 10M refs) a
     * program's sweep period is well inside the window, so promoted
     * chunks stay promoted; at our scaled-down windows an
     * equal-threshold demotion rule would demote every chunk on each
     * return and re-promote it four blocks later, churning
     * invalidations the paper's setup never saw (and a real OS would
     * not demote until memory pressure anyway).  The demotion path is
     * exercised by bench/ablation_threshold and the unit tests.
     */
    unsigned demoteThreshold = 0;

    unsigned blocksPerChunk() const { return 1u << (largeLog2 - smallLog2); }

    /** Promote threshold with the 0-default resolved. */
    unsigned resolvedPromote() const;
};

/** Configs are equal iff they drive bit-identical policies. */
inline bool
operator==(const TwoSizeConfig &a, const TwoSizeConfig &b)
{
    return a.smallLog2 == b.smallLog2 && a.largeLog2 == b.largeLog2 &&
           a.window == b.window &&
           a.promoteThreshold == b.promoteThreshold &&
           a.demoteThreshold == b.demoteThreshold;
}

inline bool
operator!=(const TwoSizeConfig &a, const TwoSizeConfig &b)
{
    return !(a == b);
}

/** Maximum supported blocks per chunk (4KB small / 256KB large). */
inline constexpr unsigned kMaxBlocksPerChunk = 64;

/**
 * Dynamic two-page-size assignment per the paper's Section 3.4.
 */
class TwoSizePolicy : public PageSizePolicy
{
  public:
    explicit TwoSizePolicy(const TwoSizeConfig &config);

    PageId classify(Addr vaddr, RefTime now) override;

    /**
     * Non-virtual classify for batch replay loops (the virtual
     * classify() delegates here).  Bit-identical to the original
     * per-reference recompute, but O(1) amortized: the active-block
     * count is carried incrementally per chunk and only rescanned when
     * the cached count could have expired (see activeMask/nextExpiry
     * in ChunkState and DESIGN.md §11).
     */
    PageId classifyFast(Addr vaddr, RefTime now);

    void setInvalidationSink(InvalidationSink *sink) override;
    void setLifecycleSink(LifecycleSink *sink) override { life_ = sink; }
    void reset() override;
    void resetStats() override { stats_ = PolicyStats{}; }
    const PolicyStats &stats() const override { return stats_; }
    std::string name() const override;
    bool isMultiSize() const override { return true; }

    const TwoSizeConfig &config() const { return config_; }

    /** Is the chunk containing @p vaddr currently mapped large? */
    bool isLargeMapped(Addr vaddr) const;

    /** Number of chunks that have ever been touched. */
    std::size_t trackedChunks() const { return chunks_.size(); }

  private:
    /** Per-chunk recency state. */
    struct ChunkState
    {
        std::array<RefTime, kMaxBlocksPerChunk> lastRef{}; // 0 = never
        bool large = false;

        // Incremental active-count cache.  Invariant: at the last
        // rescan time t0, activeMask/activeCount were the exact active
        // set and nextExpiry = min(lastRef[b] + window) over it.  For
        // any now < nextExpiry the count stays exact: cached blocks
        // cannot have expired (touches only extend their deadline, so
        // nextExpiry is a conservative lower bound), untouched
        // inactive blocks stay inactive, and newly touched blocks are
        // folded in as they are touched.  At now >= nextExpiry a full
        // rescan re-establishes the invariant — the same O(blocks)
        // walk the pre-cache code paid on every reference.
        std::uint64_t activeMask = 0;
        unsigned activeCount = 0;
        RefTime nextExpiry = 0; ///< 0 forces a rescan on first touch
    };

    /** Blocks of @p state accessed within the window ending at @p now. */
    unsigned activeBlocks(const ChunkState &state, RefTime now) const;

    /** Full rescan re-establishing the ChunkState cache invariant. */
    unsigned rescanActive(ChunkState &state, RefTime now) const;

    void promote(Addr chunk_number, ChunkState &state);
    void demote(Addr chunk_number, ChunkState &state);

    TwoSizeConfig config_;
    unsigned promote_threshold_;
    unsigned demote_threshold_;
    unsigned blocks_per_chunk_;
    InvalidationSink *sink_ = nullptr;
    LifecycleSink *life_ = nullptr;
    std::unordered_map<Addr, ChunkState> chunks_;
    // One-entry chunk cache for the common run of consecutive
    // references into the same chunk (node-based unordered_map never
    // invalidates element pointers; reset() clears the cache).
    Addr cached_chunk_ = 0;
    ChunkState *cached_state_ = nullptr;
    PolicyStats stats_;
};

inline PageId
TwoSizePolicy::classifyFast(Addr vaddr, RefTime now)
{
    const Addr chunk_number = vaddr >> config_.largeLog2;
    ChunkState *state;
    if (cached_state_ != nullptr && chunk_number == cached_chunk_) {
        state = cached_state_;
    } else {
        state = &chunks_[chunk_number];
        cached_chunk_ = chunk_number;
        cached_state_ = state;
    }

    const unsigned block = static_cast<unsigned>(
        (vaddr >> config_.smallLog2) & (blocks_per_chunk_ - 1));
    state->lastRef[block] = now;

    unsigned active;
    if (now >= state->nextExpiry) {
        active = rescanActive(*state, now);
    } else {
        const std::uint64_t bit = std::uint64_t{1} << block;
        if ((state->activeMask & bit) == 0) {
            state->activeMask |= bit;
            ++state->activeCount;
        }
        active = state->activeCount;
    }

    if (!state->large && active >= promote_threshold_)
        promote(chunk_number, *state);
    else if (state->large && demote_threshold_ != 0 &&
             active < demote_threshold_)
        demote(chunk_number, *state);

    if (state->large) {
        ++stats_.refsLarge;
        return pageOf(vaddr, config_.largeLog2);
    }
    ++stats_.refsSmall;
    return pageOf(vaddr, config_.smallLog2);
}

} // namespace tps

#endif // TPS_VM_TWO_SIZE_POLICY_H_
