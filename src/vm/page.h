/**
 * @file
 * Page identity types.
 *
 * Pages are powers of two in size and aligned (paper, Section 1), so a
 * page is fully identified by its virtual page number together with its
 * size; physical addresses form by concatenation, never addition.
 */

#ifndef TPS_VM_PAGE_H_
#define TPS_VM_PAGE_H_

#include <cstdint>
#include <functional>

#include "util/bitops.h"
#include "util/types.h"

namespace tps
{

/** Conventional page-size exponents used throughout the study. */
inline constexpr unsigned kLog2_4K = 12;
inline constexpr unsigned kLog2_8K = 13;
inline constexpr unsigned kLog2_16K = 14;
inline constexpr unsigned kLog2_32K = 15;
inline constexpr unsigned kLog2_64K = 16;

/**
 * Identity of one page: virtual page number plus size exponent.
 *
 * Two PageIds are equal only if both fields match; a 4KB page and the
 * 32KB page containing it are distinct mappings (a TLB entry for one
 * never satisfies a lookup classified as the other).
 */
struct PageId
{
    Addr vpn = 0;
    std::uint8_t sizeLog2 = kLog2_4K;

    Addr baseAddr() const { return vpn << sizeLog2; }
    std::uint64_t sizeBytes() const { return std::uint64_t{1} << sizeLog2; }

    /** True iff @p vaddr lies within this page. */
    bool
    contains(Addr vaddr) const
    {
        return (vaddr >> sizeLog2) == vpn;
    }

    bool
    operator==(const PageId &other) const
    {
        return vpn == other.vpn && sizeLog2 == other.sizeLog2;
    }
};

/** Build the PageId of size 2^sizeLog2 containing @p vaddr. */
inline PageId
pageOf(Addr vaddr, unsigned size_log2)
{
    return PageId{vaddr >> size_log2,
                  static_cast<std::uint8_t>(size_log2)};
}

/** Hash functor for PageId (size folded into the high bits). */
struct PageIdHash
{
    std::size_t
    operator()(const PageId &page) const
    {
        // SplitMix64-style mix of vpn and size.
        std::uint64_t z = page.vpn +
                          (std::uint64_t{page.sizeLog2} << 56) +
                          0x9E3779B97F4A7C15ULL;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return static_cast<std::size_t>(z ^ (z >> 31));
    }
};

} // namespace tps

#endif // TPS_VM_PAGE_H_
