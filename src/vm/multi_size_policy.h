/**
 * @file
 * Hierarchical multi-page-size assignment — the extension the paper
 * leaves open ("we do not know of a good operating system policy for
 * selecting among many page sizes", Section 1) while citing hardware
 * that already supported it (R4000: 13 sizes; SuperSPARC: 4).
 *
 * The policy generalizes Section 3.4 recursively: level 0 pages (4KB)
 * promote to level 1 chunks (e.g. 32KB) exactly as in TwoSizePolicy;
 * a level 2 superchunk (e.g. 256KB) promotes when at least half of
 * its level-1 chunks are themselves promoted, and so on.  Promotion
 * at level k invalidates the level-(k-1) translations it subsumes.
 * Like the two-size default, demotion is disabled (see
 * TwoSizeConfig::demoteThreshold for the rationale).
 */

#ifndef TPS_VM_MULTI_SIZE_POLICY_H_
#define TPS_VM_MULTI_SIZE_POLICY_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "vm/policy.h"

namespace tps
{

/** Configuration of the size ladder. */
struct MultiSizeConfig
{
    /**
     * Page-size exponents, ascending; at most 4 levels, each level at
     * most 64x the previous.  Default: 4KB / 32KB / 256KB.
     */
    std::vector<unsigned> sizeLog2s = {12, 15, 18};

    /** Working-set window T, in references. */
    RefTime window = 200'000;

    /**
     * Per-transition promote threshold as a fraction of children
     * (numerator over denominator), default 1/2 — the paper's "half
     * or more".
     */
    unsigned thresholdNum = 1;
    unsigned thresholdDen = 2;

    /** Children per parent at transition k -> k+1. */
    unsigned
    fanout(std::size_t level) const
    {
        return 1u << (sizeLog2s.at(level + 1) - sizeLog2s.at(level));
    }

    /** Resolved promote threshold at transition k -> k+1. */
    unsigned
    threshold(std::size_t level) const
    {
        const unsigned children = fanout(level);
        unsigned t = children * thresholdNum / thresholdDen;
        return t == 0 ? 1 : t;
    }
};

/** Hierarchical N-size assignment policy. */
class MultiSizePolicy : public PageSizePolicy
{
  public:
    explicit MultiSizePolicy(const MultiSizeConfig &config);

    PageId classify(Addr vaddr, RefTime now) override;
    void setInvalidationSink(InvalidationSink *sink) override;
    void setLifecycleSink(LifecycleSink *sink) override { life_ = sink; }
    void reset() override;
    void resetStats() override { stats_ = PolicyStats{}; }
    const PolicyStats &stats() const override { return stats_; }
    std::string name() const override;
    bool isMultiSize() const override { return true; }

    const MultiSizeConfig &config() const { return config_; }

    /** Current mapping level (index into sizeLog2s) for @p vaddr. */
    std::size_t levelOf(Addr vaddr) const;

    /** Refs classified at each level (index-aligned to sizeLog2s). */
    const std::vector<std::uint64_t> &refsPerLevel() const
    {
        return refs_per_level_;
    }

  private:
    /** Per-parent recency/promotion state at one transition. */
    struct NodeState
    {
        /** Last reference time of each child region (0 = never). */
        std::array<RefTime, 64> lastRef{};
        bool promoted = false;
    };

    /** State of transition k: parent number -> NodeState. */
    using LevelMap = std::unordered_map<Addr, NodeState>;

    unsigned activeChildren(const NodeState &node, RefTime now,
                            std::size_t level) const;
    void promote(std::size_t level, Addr parent_number);

    MultiSizeConfig config_;
    InvalidationSink *sink_ = nullptr;
    LifecycleSink *life_ = nullptr;
    std::vector<LevelMap> levels_; ///< one per transition
    PolicyStats stats_;
    std::vector<std::uint64_t> refs_per_level_;
};

} // namespace tps

#endif // TPS_VM_MULTI_SIZE_POLICY_H_
