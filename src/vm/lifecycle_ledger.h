/**
 * @file
 * Per-chunk page-lifecycle accounting: folds the promote/demote event
 * stream plus the measured reference stream into the evidence the
 * paper's tradeoff discussion needs — how long promotions last (dwell),
 * how often chunks churn (promote -> demote -> promote), and whether a
 * promotion *paid off* (did the program actually touch the subpages
 * whose TLB reach the large page bought?).
 *
 * The ledger is an observer fed by the experiment driver with explicit
 * measured-reference timestamps, so its output is bit-identical under
 * batched vs per-reference execution and at any thread count.  Its
 * promote/demote totals reconcile exactly with PolicyStats
 * (promotions/demotions), which the events test suite asserts at every
 * chunk size and thread count.
 *
 * Touched-subpage tracking covers the *tracked transition* only (small
 * -> large, transition 0 of a multi-size ladder): that is where the
 * paper's reach-vs-waste tradeoff lives.  Higher multi-size transitions
 * still get dwell/churn accounting.
 */

#ifndef TPS_VM_LIFECYCLE_LEDGER_H_
#define TPS_VM_LIFECYCLE_LEDGER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/stat_registry.h"
#include "vm/page.h"

namespace tps
{

/** Knobs of the lifecycle ledger (derived from the policy in play). */
struct LifecycleConfig
{
    /** Subpage granularity of touched tracking (the small page). */
    unsigned smallLog2 = kLog2_4K;

    /** Chunk granularity; promotions *to* this size are the tracked
     *  transition that gets touched-subpage accounting. */
    unsigned largeLog2 = kLog2_32K;

    /**
     * A tracked episode whose touched-subpage fraction ends below this
     * counts as a wasted promotion: the chunk was mapped large but the
     * program never used the reach it bought.  The default matches the
     * paper's promote threshold ("half or more of the blocks").
     */
    double wastedThreshold = 0.5;

    unsigned blocksPerChunk() const { return 1u << (largeLog2 - smallLog2); }
};

/** Everything the ledger measured (see exportTo for key names). */
struct LifecycleSummary
{
    std::uint64_t promotions = 0; ///< all transitions, == policy counter
    std::uint64_t demotions = 0;  ///< all transitions, == policy counter

    std::uint64_t chunksPromoted = 0;  ///< distinct tracked chunks
    std::uint64_t repromotions = 0;    ///< promote after earlier demote
    std::uint64_t episodesClosed = 0;  ///< demote-terminated episodes
    std::uint64_t episodesOpen = 0;    ///< still promoted at finish
    std::uint64_t wastedPromotions = 0;

    /** Tracked-transition subpage totals over all episodes. */
    std::uint64_t touchedSubpages = 0;
    std::uint64_t coveredSubpages = 0;

    /** Episode dwell times (refs), bucket k = dwell in [2^(k-1), 2^k)
     *  (bucket 0: dwell 0).  All transitions. */
    std::vector<std::uint64_t> dwellLog2;

    double
    touchedFraction() const
    {
        return coveredSubpages == 0
                   ? 0.0
                   : static_cast<double>(touchedSubpages) /
                         static_cast<double>(coveredSubpages);
    }

    double
    wastedFraction() const
    {
        const std::uint64_t episodes = episodesClosed + episodesOpen;
        return episodes == 0 ? 0.0
                             : static_cast<double>(wastedPromotions) /
                                   static_cast<double>(episodes);
    }

    /** Register everything under "<prefix>.lifecycle.*". */
    void exportTo(obs::StatRegistry &registry,
                  const std::string &prefix) const;
};

/**
 * The live ledger.  Not thread-safe; one per classification pass (the
 * promote/demote stream is policy state, shared by every cell of a
 * shared pass).  Timestamps are measured-reference indices supplied by
 * the driver — the ledger has no clock of its own.
 */
class LifecycleLedger
{
  public:
    explicit LifecycleLedger(const LifecycleConfig &config);

    void onPromote(RefTime t, Addr chunk_number, unsigned from_log2,
                   unsigned to_log2);
    void onDemote(RefTime t, Addr chunk_number, unsigned from_log2,
                  unsigned to_log2);

    /** Record one measured reference; marks the touched subpage when
     *  the containing chunk has an open tracked episode. */
    void
    touch(Addr vaddr)
    {
        const Addr chunk = vaddr >> config_.largeLog2;
        if (!cache_valid_ || chunk != cached_chunk_) {
            // Negative results are cached too (most chunks of a mostly
            // -small workload never promote); onPromote invalidates.
            const auto it = chunks_.find(trackedKey(chunk));
            cached_chunk_ = chunk;
            cached_ = it == chunks_.end() ? nullptr : &it->second;
            cache_valid_ = true;
        }
        if (cached_ == nullptr || !cached_->open)
            return;
        const std::uint64_t bit =
            std::uint64_t{1}
            << ((vaddr >> config_.smallLog2) &
                (config_.blocksPerChunk() - 1));
        if ((cached_->touched & bit) == 0) {
            cached_->touched |= bit;
            ++cached_->touchedCount;
            ++open_touched_;
        }
    }

    /**
     * Warmup boundary: zero the totals (mirroring resetStats on the
     * policy so the reconciliation invariant holds over the measured
     * region) but keep episodes open — their dwell and touched masks
     * restart at @p t, measuring the post-warmup lifetime only.
     */
    void resetStats(RefTime t);

    /** Currently-open tracked episodes (interval telemetry). */
    std::uint64_t openTrackedChunks() const { return open_tracked_; }

    /** Subpages touched across the open tracked episodes. */
    std::uint64_t openTouchedSubpages() const { return open_touched_; }

    /** Bytes of address space currently mapped large. */
    std::uint64_t
    openReachBytes() const
    {
        return open_tracked_ << config_.largeLog2;
    }

    /** touched / covered over the open tracked episodes (0 if none). */
    double
    reachUtilization() const
    {
        const std::uint64_t covered =
            open_tracked_ * config_.blocksPerChunk();
        return covered == 0 ? 0.0
                            : static_cast<double>(open_touched_) /
                                  static_cast<double>(covered);
    }

    /** Close the books at measured time @p end (ledger is spent). */
    LifecycleSummary finish(RefTime end);

    const LifecycleConfig &config() const { return config_; }

  private:
    /** Lifecycle state of one (chunk, to-size) pair. */
    struct ChunkRecord
    {
        RefTime start = 0;          ///< open-episode start time
        std::uint64_t touched = 0;  ///< subpage mask (tracked only)
        unsigned touchedCount = 0;
        std::uint32_t episodes = 0; ///< promotes seen for this key
        bool open = false;
        bool tracked = false; ///< to_log2 == config.largeLog2
    };

    /** Episodes are keyed per (chunk, to-size): a multi-size ladder
     *  promotes the same address range at several granularities and
     *  each transition has its own lifecycle. */
    static Addr
    key(Addr chunk_number, unsigned to_log2)
    {
        return (chunk_number << 8) | to_log2;
    }

    Addr
    trackedKey(Addr chunk_number) const
    {
        return key(chunk_number, config_.largeLog2);
    }

    void closeEpisode(ChunkRecord &record, RefTime t);

    LifecycleConfig config_;
    LifecycleSummary summary_;
    std::unordered_map<Addr, ChunkRecord> chunks_;
    std::uint64_t open_tracked_ = 0;
    std::uint64_t open_touched_ = 0;
    // One-entry cache for the common run of consecutive touches into
    // the same chunk (node-based unordered_map pointers are stable).
    Addr cached_chunk_ = 0;
    ChunkRecord *cached_ = nullptr;
    bool cache_valid_ = false;
};

} // namespace tps

#endif // TPS_VM_LIFECYCLE_LEDGER_H_
