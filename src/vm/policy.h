/**
 * @file
 * Page-size assignment policy interface and the single-size baseline.
 *
 * A policy answers, per memory reference, "which page (of which size)
 * does this address live on right now?".  The two-page-size policy may
 * also change its mind over time (promotion/demotion), in which case it
 * notifies an InvalidationSink so stale TLB entries are shot down —
 * the cost the paper folds into the 25% higher miss penalty.
 */

#ifndef TPS_VM_POLICY_H_
#define TPS_VM_POLICY_H_

#include <cstdint>
#include <string>

#include "obs/stat_registry.h"
#include "vm/page.h"

namespace tps
{

/** Receiver of mapping-change notifications (typically a TLB). */
class InvalidationSink
{
  public:
    virtual ~InvalidationSink() = default;

    /** The translation for @p page is no longer valid. */
    virtual void invalidatePage(const PageId &page) = 0;

    /**
     * A whole chunk changed mapping granularity (promotion when
     * @p to_large, demotion otherwise).  Per-page invalidations for
     * the same event are delivered separately via invalidatePage();
     * this hook exists so page-table models can remap in one step.
     */
    virtual void
    onChunkRemap(Addr chunk_number, bool to_large)
    {
        (void)chunk_number;
        (void)to_large;
    }
};

/**
 * Receiver of page-size *lifecycle* notifications (promotion and
 * demotion of a chunk), fired adjacent to the PolicyStats increments
 * so a listener's totals reconcile exactly with the counters.
 * Separate from InvalidationSink on purpose: invalidations are about
 * cached-translation correctness (TLB, page tables, phys remapping),
 * lifecycle events are pure observation — the LifecycleLedger and the
 * event log attach here without perturbing any modeled state.
 */
class LifecycleSink
{
  public:
    virtual ~LifecycleSink() = default;

    /** The chunk @p chunk_number (numbered in 2^to_log2 units) is now
     *  mapped at 2^to_log2, previously at 2^from_log2. */
    virtual void onPromote(Addr chunk_number, unsigned from_log2,
                           unsigned to_log2) = 0;

    /** The reverse transition (two-size policies only today). */
    virtual void onDemote(Addr chunk_number, unsigned from_log2,
                          unsigned to_log2) = 0;
};

/** Counters every policy maintains. */
struct PolicyStats
{
    std::uint64_t refsSmall = 0;  ///< refs classified onto small pages
    std::uint64_t refsLarge = 0;  ///< refs classified onto large pages
    std::uint64_t promotions = 0; ///< small->large chunk transitions
    std::uint64_t demotions = 0;  ///< large->small chunk transitions

    /** Fraction of references mapped by large pages. */
    double
    largeFraction() const
    {
        const std::uint64_t total = refsSmall + refsLarge;
        return total == 0 ? 0.0
                          : static_cast<double>(refsLarge) /
                                static_cast<double>(total);
    }

    /**
     * Register every counter under "<prefix>."
     * ("policy.promotions", ...) plus the derived large fraction.
     */
    void exportTo(obs::StatRegistry &registry,
                  const std::string &prefix = "policy") const;

    /**
     * Counter deltas accumulated since @p since was snapshotted (see
     * TlbStats::deltaSince; interval telemetry relies on sums of
     * successive diffs reproducing the aggregate exactly).
     */
    PolicyStats deltaSince(const PolicyStats &since) const;
};

/** Per-reference page-size assignment. */
class PageSizePolicy
{
  public:
    virtual ~PageSizePolicy() = default;

    /**
     * Classify the reference at @p vaddr made at reference-time @p now
     * (1-based, monotonically increasing).  May emit invalidations to
     * the registered sink before returning.
     */
    virtual PageId classify(Addr vaddr, RefTime now) = 0;

    /** Register the TLB (or other cache of translations) to notify. */
    virtual void setInvalidationSink(InvalidationSink *sink) = 0;

    /** Register a lifecycle observer (nullptr detaches).  Default
     *  no-op: single-size policies never promote, so there is nothing
     *  to observe and their totals reconcile vacuously. */
    virtual void setLifecycleSink(LifecycleSink *sink) { (void)sink; }

    /** Forget all history (for replaying the trace from the start). */
    virtual void reset() = 0;

    /** Zero statistics only, keeping assignment state (warmup). */
    virtual void resetStats() = 0;

    virtual const PolicyStats &stats() const = 0;
    virtual std::string name() const = 0;

    /** True when the policy can assign more than one page size. */
    virtual bool isMultiSize() const { return false; }
};

/**
 * The baseline: every address maps to a page of one fixed size.
 */
class SingleSizePolicy : public PageSizePolicy
{
  public:
    explicit SingleSizePolicy(unsigned size_log2);

    // Defined inline so the batched experiment engine's devirtualized
    // classification loop (core/experiment.cc) can inline it.
    PageId
    classify(Addr vaddr, RefTime now) override
    {
        (void)now;
        ++stats_.refsSmall;
        return pageOf(vaddr, size_log2_);
    }

    void setInvalidationSink(InvalidationSink *sink) override;
    void reset() override;
    void resetStats() override { stats_ = PolicyStats{}; }
    const PolicyStats &stats() const override { return stats_; }
    std::string name() const override;

    unsigned sizeLog2() const { return size_log2_; }

  private:
    unsigned size_log2_;
    PolicyStats stats_;
};

} // namespace tps

#endif // TPS_VM_POLICY_H_
