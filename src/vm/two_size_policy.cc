#include "vm/two_size_policy.h"

#include <algorithm>

#include "util/format.h"
#include "util/logging.h"

namespace tps
{

unsigned
TwoSizeConfig::resolvedPromote() const
{
    return promoteThreshold != 0 ? promoteThreshold : blocksPerChunk() / 2;
}

TwoSizePolicy::TwoSizePolicy(const TwoSizeConfig &config)
    : config_(config), promote_threshold_(config.resolvedPromote()),
      demote_threshold_(config.demoteThreshold),
      blocks_per_chunk_(config.blocksPerChunk())
{
    if (config.largeLog2 <= config.smallLog2)
        tps_fatal("large page (2^", config.largeLog2,
                  ") must exceed small page (2^", config.smallLog2, ")");
    if (blocks_per_chunk_ > kMaxBlocksPerChunk)
        tps_fatal("size ratio ", blocks_per_chunk_, " exceeds supported ",
                  kMaxBlocksPerChunk, " blocks per chunk");
    if (config.window == 0)
        tps_fatal("two-size policy window must be positive");
    if (promote_threshold_ > blocks_per_chunk_)
        tps_fatal("promote threshold ", promote_threshold_,
                  " exceeds blocks per chunk ", blocks_per_chunk_);
    if (demote_threshold_ > promote_threshold_)
        tps_fatal("demote threshold above promote threshold would "
                  "oscillate");
}

unsigned
TwoSizePolicy::activeBlocks(const ChunkState &state, RefTime now) const
{
    unsigned active = 0;
    for (unsigned b = 0; b < blocks_per_chunk_; ++b) {
        const RefTime last = state.lastRef[b];
        if (last != 0 && now - last < config_.window)
            ++active;
    }
    return active;
}

unsigned
TwoSizePolicy::rescanActive(ChunkState &state, RefTime now) const
{
    std::uint64_t active_mask = 0;
    unsigned active = 0;
    RefTime next_expiry = ~RefTime{0};
    for (unsigned b = 0; b < blocks_per_chunk_; ++b) {
        const RefTime last = state.lastRef[b];
        if (last != 0 && now - last < config_.window) {
            active_mask |= std::uint64_t{1} << b;
            ++active;
            next_expiry = std::min(next_expiry, last + config_.window);
        }
    }
    state.activeMask = active_mask;
    state.activeCount = active;
    state.nextExpiry = next_expiry;
    return active;
}

void
TwoSizePolicy::promote(Addr chunk_number, ChunkState &state)
{
    state.large = true;
    ++stats_.promotions;
    if (life_ != nullptr)
        life_->onPromote(chunk_number, config_.smallLog2,
                         config_.largeLog2);
    if (sink_ != nullptr) {
        // The blocks of this chunk were mapped as small pages; those
        // translations are now stale.
        const Addr first_small_vpn =
            chunk_number << (config_.largeLog2 - config_.smallLog2);
        for (unsigned b = 0; b < blocks_per_chunk_; ++b) {
            sink_->invalidatePage(
                PageId{first_small_vpn + b,
                       static_cast<std::uint8_t>(config_.smallLog2)});
        }
        sink_->onChunkRemap(chunk_number, true);
    }
}

void
TwoSizePolicy::demote(Addr chunk_number, ChunkState &state)
{
    state.large = false;
    ++stats_.demotions;
    if (life_ != nullptr)
        life_->onDemote(chunk_number, config_.largeLog2,
                        config_.smallLog2);
    if (sink_ != nullptr) {
        sink_->invalidatePage(
            PageId{chunk_number,
                   static_cast<std::uint8_t>(config_.largeLog2)});
        sink_->onChunkRemap(chunk_number, false);
    }
}

PageId
TwoSizePolicy::classify(Addr vaddr, RefTime now)
{
    return classifyFast(vaddr, now);
}

void
TwoSizePolicy::setInvalidationSink(InvalidationSink *sink)
{
    sink_ = sink;
}

void
TwoSizePolicy::reset()
{
    chunks_.clear();
    cached_chunk_ = 0;
    cached_state_ = nullptr;
    stats_ = PolicyStats{};
}

std::string
TwoSizePolicy::name() const
{
    return formatBytes(std::uint64_t{1} << config_.smallLog2) + "/" +
           formatBytes(std::uint64_t{1} << config_.largeLog2);
}

bool
TwoSizePolicy::isLargeMapped(Addr vaddr) const
{
    const auto it = chunks_.find(vaddr >> config_.largeLog2);
    return it != chunks_.end() && it->second.large;
}

} // namespace tps
