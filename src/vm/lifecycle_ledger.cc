#include "vm/lifecycle_ledger.h"

#include "util/logging.h"

namespace tps
{

namespace
{

/** Fixed bucket count: config-independent so exported histograms have
 *  a deterministic shape (dwell < 2^39 refs covers any feasible run). */
constexpr std::size_t kDwellBuckets = 40;

std::size_t
dwellBucket(RefTime dwell)
{
    std::size_t bucket = 0;
    while (dwell != 0 && bucket + 1 < kDwellBuckets) {
        dwell >>= 1;
        ++bucket;
    }
    return bucket;
}

} // namespace

void
LifecycleSummary::exportTo(obs::StatRegistry &registry,
                           const std::string &prefix) const
{
    registry.addCounter(prefix + ".lifecycle.promotions", promotions);
    registry.addCounter(prefix + ".lifecycle.demotions", demotions);
    registry.addCounter(prefix + ".lifecycle.chunks_promoted",
                        chunksPromoted);
    registry.addCounter(prefix + ".lifecycle.repromotions",
                        repromotions);
    registry.addCounter(prefix + ".lifecycle.episodes_closed",
                        episodesClosed);
    registry.addCounter(prefix + ".lifecycle.episodes_open",
                        episodesOpen);
    registry.addCounter(prefix + ".lifecycle.wasted_promotions",
                        wastedPromotions);
    registry.addCounter(prefix + ".lifecycle.touched_subpages",
                        touchedSubpages);
    registry.addCounter(prefix + ".lifecycle.covered_subpages",
                        coveredSubpages);
    registry.addValue(prefix + ".lifecycle.touched_fraction",
                      touchedFraction());
    registry.addValue(prefix + ".lifecycle.wasted_fraction",
                      wastedFraction());
    registry.addHistogram(prefix + ".lifecycle.dwell_log2", dwellLog2);
}

LifecycleLedger::LifecycleLedger(const LifecycleConfig &config)
    : config_(config)
{
    if (config_.largeLog2 <= config_.smallLog2)
        tps_fatal("lifecycle ledger: largeLog2 (", config_.largeLog2,
                  ") must exceed smallLog2 (", config_.smallLog2, ")");
    if (config_.largeLog2 - config_.smallLog2 > 6)
        tps_fatal("lifecycle ledger: more than 64 subpages per chunk");
    summary_.dwellLog2.assign(kDwellBuckets, 0);
}

void
LifecycleLedger::closeEpisode(ChunkRecord &record, RefTime t)
{
    const RefTime dwell = t >= record.start ? t - record.start : 0;
    ++summary_.dwellLog2[dwellBucket(dwell)];
    if (record.tracked) {
        summary_.touchedSubpages += record.touchedCount;
        summary_.coveredSubpages += config_.blocksPerChunk();
        const double fraction =
            static_cast<double>(record.touchedCount) /
            static_cast<double>(config_.blocksPerChunk());
        if (fraction < config_.wastedThreshold)
            ++summary_.wastedPromotions;
        --open_tracked_;
        open_touched_ -= record.touchedCount;
    }
    record.open = false;
    record.touched = 0;
    record.touchedCount = 0;
}

void
LifecycleLedger::onPromote(RefTime t, Addr chunk_number,
                           unsigned from_log2, unsigned to_log2)
{
    (void)from_log2;
    ++summary_.promotions;
    ChunkRecord &record = chunks_[key(chunk_number, to_log2)];
    cache_valid_ = false; // a cached "never promoted" is now stale
    if (record.open)
        return; // re-promote of an open episode: policy-impossible,
                // but never double-count if it happens
    record.tracked = to_log2 == config_.largeLog2;
    record.open = true;
    record.start = t;
    record.touched = 0;
    record.touchedCount = 0;
    ++record.episodes;
    if (record.tracked) {
        ++open_tracked_;
        if (record.episodes == 1)
            ++summary_.chunksPromoted;
        else
            ++summary_.repromotions;
    }
}

void
LifecycleLedger::onDemote(RefTime t, Addr chunk_number,
                          unsigned from_log2, unsigned to_log2)
{
    (void)to_log2;
    ++summary_.demotions;
    // A demotion names the size being *left*: the episode it closes is
    // the one opened by the promote *to* from_log2.
    const auto it = chunks_.find(key(chunk_number, from_log2));
    if (it == chunks_.end() || !it->second.open)
        return; // demote without a ledger-known episode (cannot happen
                // through the policies; tolerated for robustness)
    closeEpisode(it->second, t);
    ++summary_.episodesClosed;
    cache_valid_ = false;
}

void
LifecycleLedger::resetStats(RefTime t)
{
    summary_ = LifecycleSummary{};
    summary_.dwellLog2.assign(kDwellBuckets, 0);
    open_tracked_ = 0;
    open_touched_ = 0;
    for (auto &[k, record] : chunks_) {
        if (!record.open) {
            record.episodes = 0;
            continue;
        }
        // Keep the episode open but restart its clock and mask: the
        // measured region accounts only post-warmup dwell and touches.
        record.start = t;
        record.touched = 0;
        record.touchedCount = 0;
        record.episodes = 1;
        if (record.tracked) {
            ++open_tracked_;
            ++summary_.chunksPromoted;
        }
    }
    cache_valid_ = false;
}

LifecycleSummary
LifecycleLedger::finish(RefTime end)
{
    for (auto &[k, record] : chunks_) {
        if (!record.open)
            continue;
        closeEpisode(record, end);
        ++summary_.episodesOpen;
    }
    cache_valid_ = false;
    return summary_;
}

} // namespace tps
