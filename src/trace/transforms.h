/**
 * @file
 * Composable trace transformers (limit, filter-by-type, interleave).
 *
 * These adapt TraceSources the way the paper's tooling post-processed
 * raw shade output: truncating to a budget, selecting data-only
 * streams, or merging streams (a cheap stand-in for multiprogramming,
 * which the paper flags as future work).
 */

#ifndef TPS_TRACE_TRANSFORMS_H_
#define TPS_TRACE_TRANSFORMS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/trace_source.h"

namespace tps
{

/** Caps an underlying source at a fixed number of references. */
class LimitSource : public TraceSource
{
  public:
    LimitSource(TraceSource &inner, std::uint64_t max_refs);

    bool next(MemRef &ref) override;
    /** Clamps to the remaining budget, then batches into the inner. */
    std::size_t fill(MemRef *out, std::size_t n) override;
    void reset() override;
    std::string name() const override;

  private:
    TraceSource &inner_;
    std::uint64_t max_refs_;
    std::uint64_t delivered_ = 0;
};

/** Passes through only references of the selected kinds. */
class TypeFilterSource : public TraceSource
{
  public:
    TypeFilterSource(TraceSource &inner, bool keep_ifetch, bool keep_load,
                     bool keep_store);

    bool next(MemRef &ref) override;
    void reset() override;
    std::string name() const override;

  private:
    bool keeps(RefType type) const;

    TraceSource &inner_;
    bool keep_ifetch_;
    bool keep_load_;
    bool keep_store_;
};

/**
 * Round-robin interleaving of several sources in fixed-size quanta,
 * modelling context switches between uniprogrammed traces.  Each
 * source's addresses are offset into a disjoint address-space slice so
 * the merged stream behaves like distinct processes sharing one TLB
 * (ASID-free, i.e. a flush-free tagged TLB).
 */
class InterleaveSource : public TraceSource
{
  public:
    /**
     * @param quantum references delivered from one source before
     *                switching to the next.
     * @param slice_log2 log2 of the per-source address slice;
     *                   source i's addresses are placed at
     *                   i << slice_log2.  Must exceed every source's
     *                   address range, and must leave enough address
     *                   bits above it for one slice per source —
     *                   more than 2^(64 - slice_log2) sources would
     *                   silently wrap onto each other's slices, so
     *                   the constructor rejects that configuration.
     */
    InterleaveSource(std::vector<TraceSource *> sources,
                     std::uint64_t quantum, unsigned slice_log2 = 36);

    bool next(MemRef &ref) override;
    /** Batches whole quantum remainders out of the inner sources'
     *  fill() (one virtual call + one vectorized offset pass per
     *  quantum chunk) instead of one virtual next() per reference;
     *  the delivered stream is identical to repeated next(). */
    std::size_t fill(MemRef *out, std::size_t n) override;
    void reset() override;
    std::string name() const override;

  private:
    std::vector<TraceSource *> sources_;
    std::vector<bool> exhausted_;
    std::uint64_t quantum_;
    unsigned slice_log2_;
    std::size_t current_ = 0;
    std::uint64_t in_quantum_ = 0;
};

} // namespace tps

#endif // TPS_TRACE_TRANSFORMS_H_
