#include "trace/trace_file.h"

#include <array>
#include <cstring>

#include "util/logging.h"

namespace tps
{

namespace
{

constexpr char kMagic[8] = {'T', 'P', 'S', 'T', 'R', 'C', '1', '\0'};

std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Map an access size in bytes to the 2-bit size code and back. */
std::uint8_t
sizeCode(std::uint8_t size)
{
    switch (size) {
      case 1:
        return 0;
      case 2:
        return 1;
      case 4:
        return 2;
      case 8:
        return 3;
      default:
        return 2; // unusual widths are recorded as 4 bytes
    }
}

std::uint8_t
sizeFromCode(std::uint8_t code)
{
    return static_cast<std::uint8_t>(1u << code);
}

template <typename Stream>
void
putU32(Stream &out, std::uint32_t v)
{
    std::array<char, 4> raw;
    for (int i = 0; i < 4; ++i)
        raw[static_cast<std::size_t>(i)] =
            static_cast<char>((v >> (8 * i)) & 0xFF);
    out.write(raw.data(), raw.size());
}

template <typename Stream>
void
putU64(Stream &out, std::uint64_t v)
{
    std::array<char, 8> raw;
    for (int i = 0; i < 8; ++i)
        raw[static_cast<std::size_t>(i)] =
            static_cast<char>((v >> (8 * i)) & 0xFF);
    out.write(raw.data(), raw.size());
}

std::uint32_t
getU32(std::istream &in)
{
    std::array<char, 4> raw{};
    in.read(raw.data(), raw.size());
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) |
            static_cast<std::uint8_t>(raw[static_cast<std::size_t>(i)]);
    return v;
}

std::uint64_t
getU64(std::istream &in)
{
    std::array<char, 8> raw{};
    in.read(raw.data(), raw.size());
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) |
            static_cast<std::uint8_t>(raw[static_cast<std::size_t>(i)]);
    return v;
}

void
putVarint(std::ostream &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.put(static_cast<char>((v & 0x7F) | 0x80));
        v >>= 7;
    }
    out.put(static_cast<char>(v));
}

bool
getVarint(std::istream &in, std::uint64_t &v)
{
    v = 0;
    int shift = 0;
    for (;;) {
        const int c = in.get();
        if (c == std::istream::traits_type::eof())
            return false;
        v |= static_cast<std::uint64_t>(c & 0x7F) << shift;
        if ((c & 0x80) == 0)
            return true;
        shift += 7;
        if (shift >= 64)
            return false; // malformed
    }
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path,
                                 const std::string &trace_name)
    : out_(path, std::ios::binary), path_(path)
{
    if (!out_)
        tps_fatal("cannot open trace file for writing: ", path);
    out_.write(kMagic, sizeof(kMagic));
    putU32(out_, static_cast<std::uint32_t>(trace_name.size()));
    out_.write(trace_name.data(),
               static_cast<std::streamsize>(trace_name.size()));
    count_offset_ = out_.tellp();
    putU64(out_, 0); // ref count, patched by finish()
}

TraceFileWriter::~TraceFileWriter()
{
    if (!finished_)
        finish();
}

void
TraceFileWriter::write(const MemRef &ref)
{
    if (finished_)
        tps_panic("write after finish on trace file ", path_);
    const std::uint8_t control = static_cast<std::uint8_t>(
        (static_cast<std::uint8_t>(ref.type) & 0x3) |
        (sizeCode(ref.size) << 2));
    out_.put(static_cast<char>(control));
    const std::int64_t delta = static_cast<std::int64_t>(ref.vaddr) -
                               static_cast<std::int64_t>(prev_addr_);
    putVarint(out_, zigzagEncode(delta));
    prev_addr_ = ref.vaddr;
    ++count_;
}

void
TraceFileWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    out_.seekp(count_offset_, std::ios::beg);
    putU64(out_, count_);
    out_.flush();
    if (!out_)
        tps_fatal("I/O error finalizing trace file ", path_);
}

std::uint64_t
writeTraceFile(const std::string &path, TraceSource &source,
               std::uint64_t max_refs)
{
    TraceFileWriter writer(path, source.name());
    MemRef ref;
    while ((max_refs == 0 || writer.refsWritten() < max_refs) &&
           source.next(ref))
        writer.write(ref);
    writer.finish();
    return writer.refsWritten();
}

TraceFileReader::TraceFileReader(const std::string &path)
    : in_(path, std::ios::binary), path_(path)
{
    if (!in_)
        tps_fatal("cannot open trace file: ", path);
    char magic[sizeof(kMagic)] = {};
    in_.read(magic, sizeof(magic));
    if (!in_ || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        tps_fatal("not a tps trace file (bad magic): ", path);
    const std::uint32_t name_len = getU32(in_);
    if (name_len > (1u << 20))
        tps_fatal("corrupt trace header (name length ", name_len, "): ",
                  path);
    name_.resize(name_len);
    in_.read(name_.data(), name_len);
    ref_count_ = getU64(in_);
    if (!in_)
        tps_fatal("truncated trace header: ", path);
    data_start_ = in_.tellg();
}

bool
TraceFileReader::next(MemRef &ref)
{
    return decodeNext(ref);
}

std::size_t
TraceFileReader::fill(MemRef *out, std::size_t n)
{
    std::size_t produced = 0;
    while (produced < n && decodeNext(out[produced]))
        ++produced;
    return produced;
}

bool
TraceFileReader::decodeNext(MemRef &ref)
{
    if (delivered_ >= ref_count_)
        return false;
    const int control = in_.get();
    if (control == std::istream::traits_type::eof())
        tps_fatal("trace file truncated (expected ", ref_count_,
                  " refs, got ", delivered_, "): ", path_);
    std::uint64_t encoded = 0;
    if (!getVarint(in_, encoded))
        tps_fatal("trace file truncated mid-record: ", path_);
    const std::int64_t delta = zigzagDecode(encoded);
    prev_addr_ = static_cast<Addr>(static_cast<std::int64_t>(prev_addr_) +
                                   delta);
    ref.vaddr = prev_addr_;
    ref.type = static_cast<RefType>(control & 0x3);
    ref.size = sizeFromCode(static_cast<std::uint8_t>((control >> 2) & 0x3));
    ++delivered_;
    return true;
}

void
TraceFileReader::reset()
{
    in_.clear();
    in_.seekg(data_start_);
    delivered_ = 0;
    prev_addr_ = 0;
}

} // namespace tps
