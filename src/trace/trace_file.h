/**
 * @file
 * Versioned binary trace-file format.
 *
 * The paper consumed traces captured by external tools (shade/shadow);
 * the modern equivalents are Pin or Valgrind (lackey).  This format is
 * the interchange point: a small converter can turn any such tool's
 * output into a .tps trace, and everything downstream — working-set
 * analysis, page-size assignment, TLB simulation — is tool-agnostic.
 *
 * Layout (little-endian):
 *   magic    "TPSTRC1\0"                             8 bytes
 *   nameLen  u32, then name bytes (no terminator)
 *   refCount u64
 *   records  refCount x {control u8, varint zigzag(vaddr delta)}
 *
 * The control byte packs the reference type (2 bits) and a size code
 * (2 bits -> 1/2/4/8 bytes).  Addresses are delta-encoded against the
 * previous record and zigzag+LEB128 compressed; sequential scans cost
 * ~2 bytes per reference.
 */

#ifndef TPS_TRACE_TRACE_FILE_H_
#define TPS_TRACE_TRACE_FILE_H_

#include <cstdint>
#include <fstream>
#include <string>

#include "trace/trace_source.h"

namespace tps
{

/** Streams MemRefs into a .tps trace file. */
class TraceFileWriter
{
  public:
    /**
     * Open @p path for writing and emit the header.
     * @param trace_name stored in the header; shown by readers.
     * Calls tps_fatal on I/O failure.
     */
    TraceFileWriter(const std::string &path, const std::string &trace_name);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one reference. */
    void write(const MemRef &ref);

    /** Patch the header ref count and flush; implied by destruction. */
    void finish();

    std::uint64_t refsWritten() const { return count_; }

  private:
    std::ofstream out_;
    std::string path_;
    std::streampos count_offset_;
    std::uint64_t count_ = 0;
    Addr prev_addr_ = 0;
    bool finished_ = false;
};

/** Reads a .tps trace file as a TraceSource (resettable via seek). */
class TraceFileReader : public TraceSource
{
  public:
    /** Open and validate @p path; tps_fatal on bad magic or I/O error. */
    explicit TraceFileReader(const std::string &path);

    bool next(MemRef &ref) override;
    std::size_t fill(MemRef *out, std::size_t n) override;
    void reset() override;
    std::string name() const override { return name_; }

    /** Ref count recorded in the header. */
    std::uint64_t refCount() const { return ref_count_; }

  private:
    bool decodeNext(MemRef &ref);

    std::ifstream in_;
    std::string path_;
    std::string name_;
    std::uint64_t ref_count_ = 0;
    std::uint64_t delivered_ = 0;
    std::streampos data_start_;
    Addr prev_addr_ = 0;
};

/** Convenience: drain @p source to @p path; returns refs written. */
std::uint64_t writeTraceFile(const std::string &path, TraceSource &source,
                             std::uint64_t max_refs = 0);

} // namespace tps

#endif // TPS_TRACE_TRACE_FILE_H_
