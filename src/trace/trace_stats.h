/**
 * @file
 * Descriptive statistics over a reference stream (Table 3.1 inputs).
 */

#ifndef TPS_TRACE_TRACE_STATS_H_
#define TPS_TRACE_TRACE_STATS_H_

#include <cstdint>
#include <unordered_set>

#include "trace/trace_source.h"
#include "util/types.h"

namespace tps
{

/** Aggregate properties of a trace. */
struct TraceStats
{
    std::uint64_t refs = 0;
    std::uint64_t instructions = 0; ///< = ifetch count
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;

    /** Distinct 4KB pages touched, split by reference kind. */
    std::uint64_t codePages4k = 0;
    std::uint64_t dataPages4k = 0;
    std::uint64_t totalPages4k = 0;

    /** Total footprint in bytes at 4KB granularity. */
    std::uint64_t footprintBytes() const { return totalPages4k << 12; }

    /** References per instruction (paper Table 3.1 "RPI"). */
    double
    rpi() const
    {
        return instructions == 0
                   ? 0.0
                   : static_cast<double>(refs) /
                         static_cast<double>(instructions);
    }
};

/**
 * Single pass over @p source collecting TraceStats.
 * Consumes up to @p max_refs references (all when 0); does not reset
 * the source first or afterwards.
 */
TraceStats collectTraceStats(TraceSource &source,
                             std::uint64_t max_refs = 0);

/**
 * Incremental variant for callers already iterating a trace.
 */
class TraceStatsBuilder
{
  public:
    void observe(const MemRef &ref);
    TraceStats finish() const;

  private:
    TraceStats stats_;
    std::unordered_set<Addr> code_pages_;
    std::unordered_set<Addr> data_pages_;
};

} // namespace tps

#endif // TPS_TRACE_TRACE_STATS_H_
