#include "trace/transforms.h"

#include <algorithm>

#include "util/logging.h"

namespace tps
{

LimitSource::LimitSource(TraceSource &inner, std::uint64_t max_refs)
    : inner_(inner), max_refs_(max_refs)
{
}

bool
LimitSource::next(MemRef &ref)
{
    if (delivered_ >= max_refs_)
        return false;
    if (!inner_.next(ref))
        return false;
    ++delivered_;
    return true;
}

std::size_t
LimitSource::fill(MemRef *out, std::size_t n)
{
    const std::uint64_t remaining = max_refs_ - delivered_;
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(n, remaining));
    const std::size_t got = inner_.fill(out, want);
    delivered_ += got;
    return got;
}

void
LimitSource::reset()
{
    inner_.reset();
    delivered_ = 0;
}

std::string
LimitSource::name() const
{
    return inner_.name();
}

TypeFilterSource::TypeFilterSource(TraceSource &inner, bool keep_ifetch,
                                   bool keep_load, bool keep_store)
    : inner_(inner), keep_ifetch_(keep_ifetch), keep_load_(keep_load),
      keep_store_(keep_store)
{
}

bool
TypeFilterSource::keeps(RefType type) const
{
    switch (type) {
      case RefType::Ifetch:
        return keep_ifetch_;
      case RefType::Load:
        return keep_load_;
      case RefType::Store:
        return keep_store_;
    }
    return false;
}

bool
TypeFilterSource::next(MemRef &ref)
{
    MemRef candidate;
    while (inner_.next(candidate)) {
        if (keeps(candidate.type)) {
            ref = candidate;
            return true;
        }
    }
    return false;
}

void
TypeFilterSource::reset()
{
    inner_.reset();
}

std::string
TypeFilterSource::name() const
{
    return inner_.name() + "/filtered";
}

InterleaveSource::InterleaveSource(std::vector<TraceSource *> sources,
                                   std::uint64_t quantum,
                                   unsigned slice_log2)
    : sources_(std::move(sources)), exhausted_(sources_.size(), false),
      quantum_(quantum), slice_log2_(slice_log2)
{
    if (sources_.empty())
        tps_fatal("InterleaveSource requires at least one source");
    if (quantum_ == 0)
        tps_fatal("InterleaveSource quantum must be positive");
    for (auto *src : sources_) {
        if (src == nullptr)
            tps_fatal("InterleaveSource given a null source");
    }
    // Slice capacity check: source i is offset to i << slice_log2, so
    // the address space above slice_log2 must hold one distinct slice
    // per source.  With more sources than 2^(64 - slice_log2) the
    // offsets wrap mod 2^64 and distinct sources silently alias the
    // same slice — a correctness bug, not a degraded mode.
    constexpr unsigned kAddrBits = 64;
    if (slice_log2_ >= kAddrBits) {
        tps_fatal("InterleaveSource slice_log2 (", slice_log2_,
                  ") must be below the ", kAddrBits,
                  "-bit address width");
    }
    const unsigned slice_bits = kAddrBits - slice_log2_;
    if (slice_bits < kAddrBits &&
        sources_.size() > (std::uint64_t{1} << slice_bits)) {
        tps_fatal("InterleaveSource: ", sources_.size(),
                  " sources do not fit in the 2^", slice_bits,
                  " address slices left above slice_log2 ",
                  slice_log2_, "; sources would alias");
    }
}

bool
InterleaveSource::next(MemRef &ref)
{
    const std::size_t n = sources_.size();
    // Each iteration either delivers a reference or marks one source
    // exhausted, so 2n+2 iterations suffice to terminate.
    for (std::size_t guard = 0; guard < 2 * n + 2; ++guard) {
        if (in_quantum_ >= quantum_) {
            current_ = (current_ + 1) % n;
            in_quantum_ = 0;
        }
        if (exhausted_[current_]) {
            bool found = false;
            for (std::size_t step = 1; step <= n; ++step) {
                const std::size_t candidate = (current_ + step) % n;
                if (!exhausted_[candidate]) {
                    current_ = candidate;
                    in_quantum_ = 0;
                    found = true;
                    break;
                }
            }
            if (!found)
                return false;
        }
        MemRef inner_ref;
        if (sources_[current_]->next(inner_ref)) {
            ref = inner_ref;
            ref.vaddr += static_cast<Addr>(current_) << slice_log2_;
            ++in_quantum_;
            return true;
        }
        exhausted_[current_] = true;
    }
    return false;
}

std::size_t
InterleaveSource::fill(MemRef *out, std::size_t n)
{
    const std::size_t count = sources_.size();
    std::size_t produced = 0;
    while (produced < n) {
        // Resolve the source to draw from, exactly like next():
        // rotate at quantum boundaries, skip exhausted sources.
        if (in_quantum_ >= quantum_) {
            current_ = (current_ + 1) % count;
            in_quantum_ = 0;
        }
        if (exhausted_[current_]) {
            bool found = false;
            for (std::size_t step = 1; step <= count; ++step) {
                const std::size_t candidate = (current_ + step) % count;
                if (!exhausted_[candidate]) {
                    current_ = candidate;
                    in_quantum_ = 0;
                    found = true;
                    break;
                }
            }
            if (!found)
                break;
        }
        // Batch the rest of the running quantum in one inner fill();
        // a short answer means that source is exhausted (fill
        // contract), which is what next() would have discovered one
        // reference later.
        const std::uint64_t quantum_left = quantum_ - in_quantum_;
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(n - produced, quantum_left));
        const std::size_t got =
            sources_[current_]->fill(out + produced, want);
        if (got < want)
            exhausted_[current_] = true;
        if (got == 0)
            continue;
        const Addr offset = static_cast<Addr>(current_) << slice_log2_;
        if (offset != 0) {
            for (std::size_t i = 0; i < got; ++i)
                out[produced + i].vaddr += offset;
        }
        produced += got;
        in_quantum_ += got;
    }
    return produced;
}

void
InterleaveSource::reset()
{
    for (auto *src : sources_)
        src->reset();
    std::fill(exhausted_.begin(), exhausted_.end(), false);
    current_ = 0;
    in_quantum_ = 0;
}

std::string
InterleaveSource::name() const
{
    std::string joined = "interleave(";
    for (std::size_t i = 0; i < sources_.size(); ++i) {
        if (i != 0)
            joined += "+";
        joined += sources_[i]->name();
    }
    joined += ")";
    return joined;
}

} // namespace tps
