/**
 * @file
 * TraceSource: the pull interface every reference stream implements.
 */

#ifndef TPS_TRACE_TRACE_SOURCE_H_
#define TPS_TRACE_TRACE_SOURCE_H_

#include <cstddef>
#include <string>

#include "trace/memref.h"

namespace tps
{

/**
 * A resettable stream of memory references.
 *
 * Implementations include in-memory traces, binary trace files and the
 * synthetic workload generators.  Sources must be deterministic across
 * reset() so that the same reference stream can be replayed against
 * many TLB configurations, exactly as the paper replays each SPARC
 * trace against 84+ configurations.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next reference.
     * @return false when the stream is exhausted (@p ref untouched).
     */
    virtual bool next(MemRef &ref) = 0;

    /**
     * Produce up to @p n references into @p out, returning how many
     * were written; fewer than @p n (including 0) means the stream is
     * exhausted.  Exactly equivalent to @p n repeated next() calls —
     * callers may freely mix fill() and next() — but implementations
     * override it to amortize the per-reference virtual dispatch
     * (e.g. an in-memory trace answers with one memcpy).  The replay
     * loop in core::runExperiment drains sources exclusively through
     * this interface.
     */
    virtual std::size_t
    fill(MemRef *out, std::size_t n)
    {
        std::size_t produced = 0;
        while (produced < n && next(out[produced]))
            ++produced;
        return produced;
    }

    /** Rewind to the first reference, replaying identically. */
    virtual void reset() = 0;

    /** Human-readable identifier (workload or file name). */
    virtual std::string name() const = 0;
};

} // namespace tps

#endif // TPS_TRACE_TRACE_SOURCE_H_
