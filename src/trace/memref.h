/**
 * @file
 * The memory-reference record: the unit of data flowing through every
 * simulator in tps.
 *
 * The paper's traces are user-mode SPARC memory references (instruction
 * fetches, loads and stores) captured with shade/shadow.  A MemRef
 * models one such reference.
 */

#ifndef TPS_TRACE_MEMREF_H_
#define TPS_TRACE_MEMREF_H_

#include <cstdint>

#include "util/types.h"

namespace tps
{

/** Kind of memory reference. */
enum class RefType : std::uint8_t
{
    Ifetch = 0, ///< instruction fetch (one per executed instruction)
    Load = 1,   ///< data read
    Store = 2,  ///< data write
};

/** Printable name for a RefType. */
constexpr const char *
refTypeName(RefType type)
{
    switch (type) {
      case RefType::Ifetch:
        return "ifetch";
      case RefType::Load:
        return "load";
      case RefType::Store:
        return "store";
    }
    return "?";
}

/**
 * One memory reference.
 *
 * Instruction counting convention: every executed instruction emits
 * exactly one Ifetch reference, so the number of instructions in a
 * trace equals its Ifetch count.  Misses-per-instruction (MPI) and
 * references-per-instruction (RPI) derive from that.
 */
struct MemRef
{
    Addr vaddr = 0;
    RefType type = RefType::Load;
    std::uint8_t size = 4; ///< access width in bytes (metadata only)

    bool isInstruction() const { return type == RefType::Ifetch; }
    bool isData() const { return type != RefType::Ifetch; }

    bool
    operator==(const MemRef &other) const
    {
        return vaddr == other.vaddr && type == other.type &&
               size == other.size;
    }
};

} // namespace tps

#endif // TPS_TRACE_MEMREF_H_
