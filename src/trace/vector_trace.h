/**
 * @file
 * In-memory trace: a vector of MemRefs exposed as a TraceSource.
 */

#ifndef TPS_TRACE_VECTOR_TRACE_H_
#define TPS_TRACE_VECTOR_TRACE_H_

#include <memory>
#include <string>
#include <vector>

#include "trace/trace_source.h"

namespace tps
{

/**
 * A trace held entirely in memory.  Used for unit tests, for capturing
 * generator output, and for replaying short traces many times.
 */
class VectorTrace : public TraceSource
{
  public:
    VectorTrace() = default;
    explicit VectorTrace(std::vector<MemRef> refs,
                         std::string name = "vector");

    void append(const MemRef &ref) { refs_.push_back(ref); }

    bool next(MemRef &ref) override;
    std::size_t fill(MemRef *out, std::size_t n) override;
    void reset() override { pos_ = 0; }
    std::string name() const override { return name_; }

    std::size_t size() const { return refs_.size(); }
    const std::vector<MemRef> &refs() const { return refs_; }

  private:
    std::vector<MemRef> refs_;
    std::string name_ = "vector";
    std::size_t pos_ = 0;
};

/**
 * A cursor over reference storage owned elsewhere (shared_ptr).
 *
 * This is what the sweep runner's materialized-trace cache hands to
 * concurrent experiment cells: one immutable MemRef vector, many
 * independent read positions.  The underlying storage is never
 * mutated, so any number of views may replay it simultaneously.
 */
class SharedTraceView : public TraceSource
{
  public:
    SharedTraceView(std::shared_ptr<const std::vector<MemRef>> refs,
                    std::string name);

    bool next(MemRef &ref) override;
    std::size_t fill(MemRef *out, std::size_t n) override;
    void reset() override { pos_ = 0; }
    std::string name() const override { return name_; }

  private:
    std::shared_ptr<const std::vector<MemRef>> refs_;
    std::string name_;
    std::size_t pos_ = 0;
};

/**
 * Drain up to @p max_refs references from @p source into a VectorTrace.
 * Drains everything when max_refs is 0.
 */
VectorTrace materialize(TraceSource &source, std::uint64_t max_refs = 0);

} // namespace tps

#endif // TPS_TRACE_VECTOR_TRACE_H_
