#include "trace/trace_stats.h"

namespace tps
{

void
TraceStatsBuilder::observe(const MemRef &ref)
{
    ++stats_.refs;
    const Addr vpn = ref.vaddr >> 12;
    switch (ref.type) {
      case RefType::Ifetch:
        ++stats_.instructions;
        code_pages_.insert(vpn);
        break;
      case RefType::Load:
        ++stats_.loads;
        data_pages_.insert(vpn);
        break;
      case RefType::Store:
        ++stats_.stores;
        data_pages_.insert(vpn);
        break;
    }
}

TraceStats
TraceStatsBuilder::finish() const
{
    TraceStats out = stats_;
    out.codePages4k = code_pages_.size();
    out.dataPages4k = data_pages_.size();
    // Code and data normally live on disjoint pages, but be exact when
    // a generator mixes them on one page.
    std::uint64_t shared = 0;
    const auto &smaller =
        code_pages_.size() <= data_pages_.size() ? code_pages_
                                                 : data_pages_;
    const auto &larger =
        code_pages_.size() <= data_pages_.size() ? data_pages_
                                                 : code_pages_;
    for (Addr vpn : smaller)
        shared += larger.count(vpn);
    out.totalPages4k = out.codePages4k + out.dataPages4k - shared;
    return out;
}

TraceStats
collectTraceStats(TraceSource &source, std::uint64_t max_refs)
{
    TraceStatsBuilder builder;
    MemRef ref;
    std::uint64_t seen = 0;
    while ((max_refs == 0 || seen < max_refs) && source.next(ref)) {
        builder.observe(ref);
        ++seen;
    }
    return builder.finish();
}

} // namespace tps
