#include "trace/vector_trace.h"

#include <algorithm>

#include "util/logging.h"

namespace tps
{

VectorTrace::VectorTrace(std::vector<MemRef> refs, std::string name)
    : refs_(std::move(refs)), name_(std::move(name))
{
}

bool
VectorTrace::next(MemRef &ref)
{
    if (pos_ >= refs_.size())
        return false;
    ref = refs_[pos_++];
    return true;
}

std::size_t
VectorTrace::fill(MemRef *out, std::size_t n)
{
    const std::size_t got = std::min(n, refs_.size() - pos_);
    std::copy_n(refs_.data() + pos_, got, out);
    pos_ += got;
    return got;
}

SharedTraceView::SharedTraceView(
    std::shared_ptr<const std::vector<MemRef>> refs, std::string name)
    : refs_(std::move(refs)), name_(std::move(name))
{
    if (refs_ == nullptr)
        tps_panic("SharedTraceView over null storage");
}

bool
SharedTraceView::next(MemRef &ref)
{
    if (pos_ >= refs_->size())
        return false;
    ref = (*refs_)[pos_++];
    return true;
}

std::size_t
SharedTraceView::fill(MemRef *out, std::size_t n)
{
    const std::size_t got = std::min(n, refs_->size() - pos_);
    std::copy_n(refs_->data() + pos_, got, out);
    pos_ += got;
    return got;
}

VectorTrace
materialize(TraceSource &source, std::uint64_t max_refs)
{
    std::vector<MemRef> refs;
    MemRef ref;
    while ((max_refs == 0 || refs.size() < max_refs) && source.next(ref))
        refs.push_back(ref);
    return VectorTrace(std::move(refs), source.name());
}

} // namespace tps
