#include "trace/vector_trace.h"

namespace tps
{

VectorTrace::VectorTrace(std::vector<MemRef> refs, std::string name)
    : refs_(std::move(refs)), name_(std::move(name))
{
}

bool
VectorTrace::next(MemRef &ref)
{
    if (pos_ >= refs_.size())
        return false;
    ref = refs_[pos_++];
    return true;
}

VectorTrace
materialize(TraceSource &source, std::uint64_t max_refs)
{
    std::vector<MemRef> refs;
    MemRef ref;
    while ((max_refs == 0 || refs.size() < max_refs) && source.next(ref))
        refs.push_back(ref);
    return VectorTrace(std::move(refs), source.name());
}

} // namespace tps
