#include "util/format.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace tps
{

std::string
withCommas(std::uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count != 0 && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return {out.rbegin(), out.rend()};
}

std::string
formatBytes(std::uint64_t bytes)
{
    static const char *suffixes[] = {"B", "KB", "MB", "GB", "TB"};
    int unit = 0;
    double v = static_cast<double>(bytes);
    while (v >= 1024.0 && unit < 4) {
        v /= 1024.0;
        ++unit;
    }
    char buf[64];
    const double rounded = std::round(v * 10.0) / 10.0;
    if (std::abs(rounded - std::round(rounded)) < 1e-9) {
        std::snprintf(buf, sizeof(buf), "%.0f%s", rounded, suffixes[unit]);
    } else {
        std::snprintf(buf, sizeof(buf), "%.1f%s", rounded, suffixes[unit]);
    }
    return buf;
}

std::string
formatFixed(double v, int places)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", places, v);
    return buf;
}

bool
parseSize(const std::string &text, std::uint64_t &bytes_out)
{
    if (text.empty())
        return false;
    std::size_t pos = 0;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(
                                    text[pos])))
        ++pos;
    if (pos == 0)
        return false;
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < pos; ++i) {
        const std::uint64_t digit =
            static_cast<std::uint64_t>(text[i] - '0');
        if (value > (~std::uint64_t{0} - digit) / 10)
            return false; // overflow
        value = value * 10 + digit;
    }

    std::string suffix = text.substr(pos);
    for (auto &c : suffix)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (!suffix.empty() && suffix.back() == 'B')
        suffix.pop_back();

    std::uint64_t mult = 1;
    if (suffix == "") {
        mult = 1;
    } else if (suffix == "K") {
        mult = 1ULL << 10;
    } else if (suffix == "M") {
        mult = 1ULL << 20;
    } else if (suffix == "G") {
        mult = 1ULL << 30;
    } else {
        return false;
    }
    if (mult != 1 && value > ~std::uint64_t{0} / mult)
        return false;
    bytes_out = value * mult;
    return true;
}

std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || raw[0] == '\0')
        return fallback;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0') {
        std::uint64_t parsed = 0;
        if (parseSize(raw, parsed))
            return parsed;
        tps_warn("ignoring unparseable ", name, "='", raw, "'");
        return fallback;
    }
    return static_cast<std::uint64_t>(v);
}

} // namespace tps
