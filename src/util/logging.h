/**
 * @file
 * gem5-style status and error reporting.
 *
 * Following the gem5 convention:
 *  - panic()  -- an internal invariant was violated (a tps bug); aborts.
 *  - fatal()  -- the user asked for something impossible (bad config);
 *                exits with status 1.
 *  - warn()   -- something works, but not as well as it should.
 *  - inform() -- normal operational status.
 *
 * All messages go to stderr so that bench/table output on stdout stays
 * machine-parseable.
 */

#ifndef TPS_UTIL_LOGGING_H_
#define TPS_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace tps
{

namespace detail
{

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    static_cast<void>((os << ... << args)); // void: empty packs too
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Test hook: count of warnings emitted so far. */
std::uint64_t warnCount();

/** Test hook: suppress/unsuppress inform() output. */
void setQuiet(bool quiet);
bool quiet();

} // namespace detail

/** Report an internal error and abort (never returns). */
#define tps_panic(...)                                                     \
    ::tps::detail::panicImpl(__FILE__, __LINE__,                           \
                             ::tps::detail::concat(__VA_ARGS__))

/** Report a user/configuration error and exit(1) (never returns). */
#define tps_fatal(...)                                                     \
    ::tps::detail::fatalImpl(__FILE__, __LINE__,                           \
                             ::tps::detail::concat(__VA_ARGS__))

/** Warn about questionable but survivable conditions. */
#define tps_warn(...)                                                      \
    ::tps::detail::warnImpl(::tps::detail::concat(__VA_ARGS__))

/** Print an informational status message (suppressed when quiet). */
#define tps_inform(...)                                                    \
    ::tps::detail::informImpl(::tps::detail::concat(__VA_ARGS__))

} // namespace tps

#endif // TPS_UTIL_LOGGING_H_
