/**
 * @file
 * Bit-manipulation helpers used throughout the address-translation code.
 *
 * Page sizes in tps are always powers of two and pages are aligned
 * (paper, Section 1), so page numbers and offsets are pure bit fields.
 */

#ifndef TPS_UTIL_BITOPS_H_
#define TPS_UTIL_BITOPS_H_

#include <bit>
#include <cassert>
#include <cstdint>

#include "util/types.h"

namespace tps
{

/** Return true iff @p v is a (nonzero) power of two. */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * Floor of log base 2.
 * @pre v != 0
 */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    assert(v != 0);
    return 63 - std::countl_zero(v);
}

/**
 * Exact log base 2 of a power of two.
 * @pre isPow2(v)
 */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    assert(isPow2(v));
    return floorLog2(v);
}

/** Smallest power of two >= v (v must be <= 2^63). */
constexpr std::uint64_t
ceilPow2(std::uint64_t v)
{
    return std::bit_ceil(v);
}

/** A mask with the low @p bits bits set. */
constexpr std::uint64_t
mask(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

/** Extract bits [first, last] (inclusive, first <= last) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned last, unsigned first)
{
    assert(first <= last);
    return (v >> first) & mask(last - first + 1);
}

/** Round @p addr down to a multiple of 2^alignLog2. */
constexpr Addr
alignDown(Addr addr, unsigned align_log2)
{
    return addr & ~mask(align_log2);
}

/** Round @p addr up to a multiple of 2^alignLog2. */
constexpr Addr
alignUp(Addr addr, unsigned align_log2)
{
    return alignDown(addr + mask(align_log2), align_log2);
}

/** True iff @p addr is a multiple of 2^alignLog2. */
constexpr bool
isAligned(Addr addr, unsigned align_log2)
{
    return (addr & mask(align_log2)) == 0;
}

} // namespace tps

#endif // TPS_UTIL_BITOPS_H_
