#include "util/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/logging.h"

namespace tps
{

namespace
{

/** SplitMix64 step, used only for seeding. */
std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
    // xoshiro's all-zero state is invalid; SplitMix64 cannot produce four
    // zero outputs in a row, but be defensive anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 0x9E3779B97F4A7C15ULL;
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    assert(bound > 0);
    // Lemire-style unbiased bounded generation with rejection.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    // 53 high-quality bits -> double in [0, 1).
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::burstLength(double p, std::uint64_t cap)
{
    p = std::clamp(p, 1e-9, 1.0);
    std::uint64_t len = 1;
    while (len < cap && !chance(p))
        ++len;
    return len;
}

ZipfSampler::ZipfSampler(std::size_t n, double s)
{
    if (n == 0)
        tps_fatal("ZipfSampler requires at least one rank");
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        total += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf_[k] = total;
    }
    for (auto &v : cdf_)
        v /= total;
    cdf_.back() = 1.0;
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        --it;
    return static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace tps
