/**
 * @file
 * A fixed-size worker pool with exception-propagating futures.
 *
 * The sweep harness replays every (workload x configuration) cell as
 * an independent task: each cell owns its workload generator, policy
 * and TLB, so the only shared state is the task queue itself.  The
 * pool is deliberately minimal — submit() hands back a std::future,
 * and parallelMapIndex() preserves submission order so parallel sweeps
 * emit cells in exactly the serial order.
 */

#ifndef TPS_UTIL_THREAD_POOL_H_
#define TPS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace tps::util
{

/** Fixed set of worker threads draining a FIFO task queue. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (clamped to at least one). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Enqueue @p fn for execution on a worker.  The returned future
     * yields fn's result; if fn throws, the exception is rethrown from
     * future::get() on the caller's thread.
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            tasks_.push_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return future;
    }

    /**
     * Worker count to use when the caller does not care: TPS_THREADS
     * when set and positive, else std::thread::hardware_concurrency()
     * (at least 1).
     */
    static unsigned defaultThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/**
 * Evaluate fn(0) .. fn(n-1) and return the results in index order.
 *
 * With @p threads <= 1 (or fewer than two items) everything runs
 * inline on the calling thread — the forced-serial path of
 * `--threads 1`.  Otherwise a private pool of min(threads, n) workers
 * executes the calls concurrently; the first exception thrown by any
 * call is rethrown here (remaining tasks still run to completion so
 * the pool can shut down cleanly).
 */
template <typename Fn>
auto
parallelMapIndex(unsigned threads, std::size_t n, Fn &&fn)
    -> std::vector<std::invoke_result_t<Fn, std::size_t>>
{
    using Result = std::invoke_result_t<Fn, std::size_t>;
    std::vector<Result> results;
    results.reserve(n);
    if (threads <= 1 || n < 2) {
        for (std::size_t i = 0; i < n; ++i)
            results.push_back(fn(i));
        return results;
    }

    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(threads, n));
    ThreadPool pool(workers);
    std::vector<std::future<Result>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        futures.push_back(pool.submit([&fn, i] { return fn(i); }));
    for (auto &future : futures)
        results.push_back(future.get());
    return results;
}

} // namespace tps::util

#endif // TPS_UTIL_THREAD_POOL_H_
