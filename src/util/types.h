/**
 * @file
 * Fundamental scalar types shared by every tps subsystem.
 */

#ifndef TPS_UTIL_TYPES_H_
#define TPS_UTIL_TYPES_H_

#include <cstdint>

namespace tps
{

/** A virtual (or physical) byte address. */
using Addr = std::uint64_t;

/** A count of simulated processor cycles. */
using Cycles = std::uint64_t;

/**
 * A logical reference timestamp: the index of a memory reference within
 * a trace, starting at 1 for the first reference.  Working-set windows
 * and page-size assignment windows are expressed in this unit.
 */
using RefTime = std::uint64_t;

} // namespace tps

#endif // TPS_UTIL_TYPES_H_
