/**
 * @file
 * Human-readable number and size formatting for tables and reports.
 */

#ifndef TPS_UTIL_FORMAT_H_
#define TPS_UTIL_FORMAT_H_

#include <cstdint>
#include <string>

namespace tps
{

/** 1234567 -> "1,234,567". */
std::string withCommas(std::uint64_t v);

/**
 * Render a byte count with a binary-unit suffix: 4096 -> "4KB",
 * 1572864 -> "1.5MB".  Chooses the largest unit that keeps the value
 * >= 1, with at most one decimal place (dropped when exact).
 */
std::string formatBytes(std::uint64_t bytes);

/** Fixed-point decimal with @p places digits after the point. */
std::string formatFixed(double v, int places);

/**
 * Parse a size string such as "4K", "32KB", "1M", "512" into bytes.
 * Accepts suffixes K/M/G with optional trailing "B", case-insensitive.
 * Returns false on malformed input.
 */
bool parseSize(const std::string &text, std::uint64_t &bytes_out);

/**
 * Read an environment override: returns @p fallback when @p name is
 * unset or unparseable (a warning is emitted for unparseable values).
 * Used by benches for TPS_REFS / TPS_WINDOW style scaling knobs.
 */
std::uint64_t envOr(const char *name, std::uint64_t fallback);

} // namespace tps

#endif // TPS_UTIL_FORMAT_H_
