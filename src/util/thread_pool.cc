#include "util/thread_pool.h"

#include "obs/trace_profiler.h"
#include "util/format.h"

namespace tps::util
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty()) // stopping_ and nothing queued
                return;
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        {
            // One span per task on the worker's timeline; shows pool
            // load imbalance in --trace-out dumps.  No-op when the
            // global profiler is off.
            obs::ScopedSpan span("task", "pool");
            task(); // exceptions land in the packaged_task's future
        }
    }
}

unsigned
ThreadPool::defaultThreads()
{
    const std::uint64_t env = envOr("TPS_THREADS", 0);
    if (env > 0)
        return static_cast<unsigned>(env);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace tps::util
