#include "util/logging.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace tps
{
namespace detail
{

namespace
{

std::atomic<std::uint64_t> warn_count{0};
std::atomic<bool> quiet_flag{false};

/**
 * Serializes message emission: worker threads call tps_warn/tps_inform
 * concurrently (parallel sweeps), and although a single fprintf of a
 * full line is atomic on glibc, POSIX does not promise it — without
 * the lock, lines can interleave mid-message on other platforms.
 * panic/fatal take it too so a crash message is never torn.
 */
std::mutex output_mutex;

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(output_mutex);
        std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(),
                     file, line);
        std::fflush(stderr);
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(output_mutex);
        std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(),
                     file, line);
        std::fflush(stderr);
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    warn_count.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(output_mutex);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (quiet_flag.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(output_mutex);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

std::uint64_t
warnCount()
{
    return warn_count.load(std::memory_order_relaxed);
}

void
setQuiet(bool quiet)
{
    quiet_flag.store(quiet, std::memory_order_relaxed);
}

bool
quiet()
{
    return quiet_flag.load(std::memory_order_relaxed);
}

} // namespace detail
} // namespace tps
