/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Every synthetic workload must be exactly reproducible from its seed so
 * that experiments are rerunnable and comparable across TLB
 * configurations (the same "trace" is replayed for every config, exactly
 * as the paper replays its SPARC traces).  We therefore use our own
 * fixed-algorithm generator (xoshiro256**) rather than std::mt19937,
 * whose distributions are not specified bit-for-bit across standard
 * library implementations.
 */

#ifndef TPS_UTIL_RANDOM_H_
#define TPS_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace tps
{

/**
 * xoshiro256** PRNG seeded via SplitMix64.
 *
 * Fast, high-quality, and fully deterministic across platforms.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (any value, including 0, is fine). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform integer in [0, bound), unbiased. @pre bound > 0 */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial: true with probability @p p (clamped to [0,1]). */
    bool chance(double p);

    /**
     * Geometric-ish burst length: 1 + Geometric(p), mean roughly 1/p.
     * Used for run lengths of sequential access bursts.
     */
    std::uint64_t burstLength(double p, std::uint64_t cap = 1u << 20);

  private:
    std::uint64_t s_[4];
};

/**
 * Zipf(s) sampler over ranks {0, .., n-1}: rank k drawn with probability
 * proportional to 1/(k+1)^s.  Uses an inverted-CDF table, so sampling is
 * O(log n).  Models skewed object popularity (e.g., hot widgets in the
 * xnews workload, hot nets in verilog).
 */
class ZipfSampler
{
  public:
    /**
     * @param n     number of ranks (must be >= 1)
     * @param s     skew parameter (s = 0 degenerates to uniform)
     */
    ZipfSampler(std::size_t n, double s);

    /** Draw one rank in [0, n). */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace tps

#endif // TPS_UTIL_RANDOM_H_
