/**
 * @file
 * Regenerates Figure 5.2: CPI_TLB for 16- and 32-entry two-way
 * set-associative TLBs; the two-page-size column uses exact indexing
 * (the scheme the paper expects to do best).
 *
 * Paper shape: most programs improve under two sizes (hugely for
 * matrix300/nasa7), a couple degrade (espresso, worm), and tomcatv
 * thrashes — results are less regular than the fully associative
 * case.
 */

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(
        argc, argv, "Figure 5.2", "CPI_TLB, two-way set-associative TLBs");

    for (const std::size_t entries : {std::size_t{16}, std::size_t{32}}) {
        TlbConfig base;
        base.organization = TlbOrganization::SetAssociative;
        base.entries = entries;
        base.ways = 2;
        base.scheme = IndexScheme::Exact;

        const auto rows = core::runCpiStudy(scale, base);

        std::cout << "-- " << entries << "-entry, two-way --\n";
        stats::TextTable table({"Program", "4KB", "8KB", "32KB",
                                "4K/32K(exact)", "two-size vs 4KB"});
        unsigned improved = 0;
        std::vector<std::vector<std::string>> csv_rows;
        for (const auto &row : rows) {
            const bool wins = row.cpiTwoSize < row.cpi4k;
            improved += wins ? 1 : 0;
            table.addRow({row.name, bench::cpi(row.cpi4k),
                          bench::cpi(row.cpi8k), bench::cpi(row.cpi32k),
                          bench::cpi(row.cpiTwoSize),
                          wins ? "better" : "worse"});
            csv_rows.push_back({row.name, formatFixed(row.cpi4k, 6),
                                formatFixed(row.cpi8k, 6),
                                formatFixed(row.cpi32k, 6),
                                formatFixed(row.cpiTwoSize, 6)});
        }
        bench::record("fig52_" + std::to_string(entries) +
                                 "entry",
                             {"program", "cpi_4k", "cpi_8k", "cpi_32k",
                              "cpi_two_size"},
                             csv_rows);
        table.print(std::cout);
        std::cout << improved
                  << "/12 programs improve under two page sizes "
                     "(paper, 16-entry: 8/12)\n\n";
    }
    return 0;
}
