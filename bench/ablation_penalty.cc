/**
 * @file
 * Ablation: the miss penalty (paper Sections 2.3/3.2).  Two parts:
 *
 * 1. Sensitivity: the paper claims results "do not change
 *    significantly with moderate changes in the miss penalty" and
 *    that delta-mp headroom covers even a 30% two-size handler
 *    slowdown.  Sweep the two-size penalty factor 1.0..2.0 and count
 *    how many programs still improve.
 *
 * 2. Grounding: replace the constant with the measured cost of
 *    walking real split forward page tables (vm/page_table.h) and
 *    report the empirical single-size vs two-size handler cost — the
 *    model behind the paper's "about 25% longer" estimate.
 */

#include "bench/bench_common.h"

#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(
        argc, argv, "Ablation (Sec 2.3/3.2)", "miss-penalty sensitivity");

    TlbConfig tlb;
    tlb.organization = TlbOrganization::SetAssociative;
    tlb.entries = 32;
    tlb.ways = 2;
    tlb.scheme = IndexScheme::Exact;

    // Collect per-workload results once; recost with varying factors.
    struct Cell
    {
        core::ExperimentResult base4k;
        core::ExperimentResult two;
    };
    const std::vector<Cell> cells = core::forEachSuiteWorkload(
        scale, [&](const auto &info) {
            Cell cell;
            auto workload = info.instantiate();
            core::RunOptions options;
            options.maxRefs = scale.refs;
            options.warmupRefs = scale.warmupRefs;
            TlbConfig tlb4 = tlb;
            tlb4.largeLog2 = kLog2_4K + 3;
            cell.base4k = core::runExperiment(
                *workload, core::PolicySpec::single(kLog2_4K), tlb4,
                options);
            cell.two = core::runExperiment(
                *workload,
                core::PolicySpec::twoSizes(core::paperPolicy(scale)),
                tlb, options);
            return cell;
        });

    std::cout << "-- two-size penalty factor sweep --\n";
    stats::TextTable table({"Factor", "penalty", "mean CPI(4K/32K)",
                            "programs improving"});
    std::vector<std::vector<std::string>> csv_rows;
    for (double factor : {1.0, 1.1, 1.25, 1.5, 1.75, 2.0}) {
        core::CpiModel model;
        model.twoSizeFactor = factor;
        double cpi_sum = 0.0;
        unsigned improving = 0;
        for (const Cell &cell : cells) {
            const double cpi_two = model.cpiTlb(
                cell.two.tlb, cell.two.policy, cell.two.instructions,
                true);
            cpi_sum += cpi_two;
            improving += cpi_two < cell.base4k.cpiTlb ? 1 : 0;
        }
        table.addRow({formatFixed(factor, 2),
                      formatFixed(20.0 * factor, 0) + "cy",
                      bench::cpi(cpi_sum / 12),
                      std::to_string(improving) + "/12"});
        csv_rows.push_back({"factor_" + formatFixed(factor, 2),
                            formatFixed(20.0 * factor, 1),
                            formatFixed(cpi_sum / 12, 6),
                            std::to_string(improving)});
    }
    bench::record("ablation_penalty_sweep",
                  {"factor", "penalty_cycles", "mean_cpi_two_size",
                   "programs_improving"},
                  csv_rows);
    table.print(std::cout);

    std::cout << "\n-- measured handler cost from the page-table "
                 "walker model --\n";
    stats::TextTable measured({"Program", "single-size cy/miss",
                               "two-size cy/miss", "ratio"});
    const auto measured_rows = core::forEachSuiteWorkload(
        scale, [&](const auto &info) {
            core::RunOptions options;
            // the walker model is slower
            options.maxRefs = scale.refs / 4;
            options.warmupRefs = 0;
            options.modelPageTables = true;

            auto workload = info.instantiate();
            const auto single = core::runExperiment(
                *workload, core::PolicySpec::single(kLog2_4K), tlb,
                options);
            workload->reset();
            const auto two = core::runExperiment(
                *workload,
                core::PolicySpec::twoSizes(core::paperPolicy(scale)),
                tlb, options);
            const double ratio =
                single.measuredMissCycles > 0
                    ? two.measuredMissCycles /
                          single.measuredMissCycles
                    : 0.0;
            return std::vector<std::string>{
                info.name, formatFixed(single.measuredMissCycles, 1),
                formatFixed(two.measuredMissCycles, 1),
                formatFixed(ratio, 2) + "x"};
        });
    bench::record("ablation_penalty_measured",
                  {"program", "single_size_cy_per_miss",
                   "two_size_cy_per_miss", "ratio"},
                  measured_rows);
    for (auto row : measured_rows)
        measured.addRow(std::move(row));
    measured.print(std::cout);
    std::cout << "\npaper estimate: two-size handlers ~25% slower "
                 "(Section 2.3); the walker model shows where that "
                 "lands for each program's size mix\n";
    return 0;
}
