/**
 * @file
 * Ablation: the miss penalty (paper Sections 2.3/3.2).  Two parts:
 *
 * 1. Sensitivity: the paper claims results "do not change
 *    significantly with moderate changes in the miss penalty" and
 *    that delta-mp headroom covers even a 30% two-size handler
 *    slowdown.  Sweep the two-size penalty factor 1.0..2.0 and count
 *    how many programs still improve.
 *
 * 2. Grounding: replace the constant with the measured cost of
 *    walking real split forward page tables (vm/page_table.h) and
 *    report the empirical single-size vs two-size handler cost — the
 *    model behind the paper's "about 25% longer" estimate.
 */

#include "bench/bench_common.h"

#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(
        argc, argv, "Ablation (Sec 2.3/3.2)", "miss-penalty sensitivity");

    TlbConfig tlb;
    tlb.organization = TlbOrganization::SetAssociative;
    tlb.entries = 32;
    tlb.ways = 2;
    tlb.scheme = IndexScheme::Exact;

    // Collect per-workload results once; recost with varying factors.
    struct Cell
    {
        core::ExperimentResult base4k;
        core::ExperimentResult two;
    };
    const std::vector<Cell> cells = core::forEachSuiteWorkload(
        scale, [&](const auto &info) {
            Cell cell;
            auto workload = info.instantiate();
            core::RunOptions options;
            options.maxRefs = scale.refs;
            options.warmupRefs = scale.warmupRefs;
            TlbConfig tlb4 = tlb;
            tlb4.largeLog2 = kLog2_4K + 3;
            cell.base4k = core::runExperiment(
                *workload, core::PolicySpec::single(kLog2_4K), tlb4,
                options);
            cell.two = core::runExperiment(
                *workload,
                core::PolicySpec::twoSizes(core::paperPolicy(scale)),
                tlb, options);
            return cell;
        });

    std::cout << "-- two-size penalty factor sweep --\n";
    stats::TextTable table({"Factor", "penalty", "mean CPI(4K/32K)",
                            "programs improving"});
    std::vector<std::vector<std::string>> csv_rows;
    for (double factor : {1.0, 1.1, 1.25, 1.5, 1.75, 2.0}) {
        core::CpiModel model;
        model.twoSizeFactor = factor;
        double cpi_sum = 0.0;
        unsigned improving = 0;
        for (const Cell &cell : cells) {
            const double cpi_two = model.cpiTlb(
                cell.two.tlb, cell.two.policy, cell.two.instructions,
                true);
            cpi_sum += cpi_two;
            improving += cpi_two < cell.base4k.cpiTlb ? 1 : 0;
        }
        table.addRow({formatFixed(factor, 2),
                      formatFixed(20.0 * factor, 0) + "cy",
                      bench::cpi(cpi_sum / 12),
                      std::to_string(improving) + "/12"});
        csv_rows.push_back({"factor_" + formatFixed(factor, 2),
                            formatFixed(20.0 * factor, 1),
                            formatFixed(cpi_sum / 12, 6),
                            std::to_string(improving)});
    }
    bench::record("ablation_penalty_sweep",
                  {"factor", "penalty_cycles", "mean_cpi_two_size",
                   "programs_improving"},
                  csv_rows);
    table.print(std::cout);

    std::cout << "\n-- measured handler cost from the page-table "
                 "walker model --\n";
    stats::TextTable measured({"Program", "single-size cy/miss",
                               "two-size cy/miss", "ratio"});
    const auto measured_rows = core::forEachSuiteWorkload(
        scale, [&](const auto &info) {
            core::RunOptions options;
            // the walker model is slower
            options.maxRefs = scale.refs / 4;
            options.warmupRefs = 0;
            options.modelPageTables = true;

            auto workload = info.instantiate();
            const auto single = core::runExperiment(
                *workload, core::PolicySpec::single(kLog2_4K), tlb,
                options);
            workload->reset();
            const auto two = core::runExperiment(
                *workload,
                core::PolicySpec::twoSizes(core::paperPolicy(scale)),
                tlb, options);
            const double ratio =
                single.measuredMissCycles > 0
                    ? two.measuredMissCycles /
                          single.measuredMissCycles
                    : 0.0;
            return std::vector<std::string>{
                info.name, formatFixed(single.measuredMissCycles, 1),
                formatFixed(two.measuredMissCycles, 1),
                formatFixed(ratio, 2) + "x"};
        });
    bench::record("ablation_penalty_measured",
                  {"program", "single_size_cy_per_miss",
                   "two_size_cy_per_miss", "ratio"},
                  measured_rows);
    for (auto row : measured_rows)
        measured.addRow(std::move(row));
    measured.print(std::cout);
    std::cout << "\npaper estimate: two-size handlers ~25% slower "
                 "(Section 2.3); the walker model shows where that "
                 "lands for each program's size mix\n";

    // ---------------------------------------------------------------
    // Mechanism axis: constant penalty vs structural walk vs walk+PWC
    // vs walk+PWC+victim-TLB (DESIGN.md §15).  Four runs per program:
    //
    //   4K+walk   : 4K-only policy, radix walk, no PWC.  Every miss
    //               walks all 4 levels, so levels/walk is exactly 4.0
    //               and cpi_walk == the paper's 20-cycle constant
    //               times MPI.
    //   32K+walk  : all-large policy, same walker, no PWC.  Large
    //               leaves terminate one level early, so levels/walk
    //               is exactly 3.0 — measured through the whole
    //               stack, which gates that the miss stream actually
    //               carries page sizes into the walker.  The depth
    //               check below compares this against the 4K column.
    //   two+walk  : the two-size policy on the same walker lands
    //               between those bounds in proportion to the large
    //               fraction of its miss stream — except worm, the
    //               paper's degradation case, whose chunks never earn
    //               a promotion and so pays full 4K depth.
    //   two+pwc   : add the page-walk cache (scale.walk geometry).
    //   two+victim: additionally catch primary-TLB evictions in a
    //               software victim array (TlbOrganization::Victim —
    //               note its primary is fully associative at the same
    //               entry count, not the 2-way array above, so its
    //               miss stream differs from two+pwc's).
    // ---------------------------------------------------------------
    std::cout << "\n-- mechanism axis: constant vs walk vs walk+PWC "
                 "vs walk+PWC+victim --\n";
    struct MechRow
    {
        std::string name;
        double levels4k = 0.0;
        double levelsLarge = 0.0;
        double levelsTwo = 0.0;
        double cpiWalkNoPwc = 0.0;
        double cpiWalkPwc = 0.0;
        double pwcHitRate = 0.0;
        double cpiVictim = 0.0;
        std::uint64_t victimHits = 0;
    };
    const auto mech_rows = core::forEachSuiteWorkload(
        scale, [&](const auto &info) {
            core::RunOptions options;
            // Full scale.refs, not a shortened run: chunk-sparse
            // programs (worm) need the whole assignment window before
            // their first promotion, and the depth check below
            // requires every program to map *something* large.
            options.maxRefs = scale.refs;
            options.warmupRefs = 0;
            options.walk = scale.walk;
            options.walk.enabled = true;

            MechRow row;
            row.name = info.name;

            auto workload = info.instantiate();
            TlbConfig tlb4 = tlb;
            tlb4.largeLog2 = kLog2_4K + 3;
            core::RunOptions no_pwc = options;
            no_pwc.walk.pwcEntries = 0;
            const auto r4 = core::runExperiment(
                *workload, core::PolicySpec::single(kLog2_4K), tlb4,
                no_pwc);
            row.levels4k = r4.walk.levelsPerWalk();

            workload->reset();
            const auto r32 = core::runExperiment(
                *workload, core::PolicySpec::single(kLog2_32K), tlb,
                no_pwc);
            row.levelsLarge = r32.walk.levelsPerWalk();

            workload->reset();
            const auto two_walk = core::runExperiment(
                *workload,
                core::PolicySpec::twoSizes(core::paperPolicy(scale)),
                tlb, no_pwc);
            row.levelsTwo = two_walk.walk.levelsPerWalk();
            row.cpiWalkNoPwc = two_walk.cpiWalk;

            workload->reset();
            const auto two_pwc = core::runExperiment(
                *workload,
                core::PolicySpec::twoSizes(core::paperPolicy(scale)),
                tlb, options);
            row.cpiWalkPwc = two_pwc.cpiWalk;
            row.pwcHitRate = two_pwc.walk.pwcHitRate();

            workload->reset();
            TlbConfig victim_tlb = tlb;
            victim_tlb.organization = TlbOrganization::Victim;
            victim_tlb.victimEntries = options.walk.victimEntries;
            const auto two_victim = core::runExperiment(
                *workload,
                core::PolicySpec::twoSizes(core::paperPolicy(scale)),
                victim_tlb, options);
            row.victimHits = two_victim.victim.victimHits;
            row.cpiVictim =
                two_victim.cpiWalk +
                static_cast<double>(options.walk.victimHitCycles) *
                    static_cast<double>(two_victim.victim.victimHits) /
                    static_cast<double>(two_victim.instructions);
            return row;
        });

    stats::TextTable mech({"Program", "lv/walk 4K", "lv/walk 32K",
                           "lv/walk 2sz", "CPIwalk", "CPIwalk+pwc",
                           "PWC hit", "CPIwalk+victim"});
    std::vector<std::vector<std::string>> mech_csv;
    bool depth_ok = true;
    for (const MechRow &row : mech_rows) {
        depth_ok = depth_ok && row.levelsLarge < row.levels4k &&
                   row.levelsTwo <= row.levels4k &&
                   row.levelsTwo >= row.levelsLarge;
        mech.addRow({row.name, formatFixed(row.levels4k, 3),
                     formatFixed(row.levelsLarge, 3),
                     formatFixed(row.levelsTwo, 3),
                     bench::cpi(row.cpiWalkNoPwc),
                     bench::cpi(row.cpiWalkPwc),
                     formatFixed(row.pwcHitRate * 100.0, 1) + "%",
                     bench::cpi(row.cpiVictim)});
        mech_csv.push_back(
            {row.name, formatFixed(row.levels4k, 4),
             formatFixed(row.levelsLarge, 4),
             formatFixed(row.levelsTwo, 4),
             formatFixed(row.cpiWalkNoPwc, 6),
             formatFixed(row.cpiWalkPwc, 6),
             formatFixed(row.pwcHitRate, 4),
             formatFixed(row.cpiVictim, 6),
             std::to_string(row.victimHits)});
    }
    bench::record("ablation_penalty_mechanism",
                  {"program", "levels_per_walk_4k",
                   "levels_per_walk_32k", "levels_per_walk_two_size",
                   "cpi_walk_no_pwc", "cpi_walk_pwc", "pwc_hit_rate",
                   "cpi_walk_victim", "victim_hits"},
                  mech_csv);
    mech.print(std::cout);
    std::cout << (depth_ok
                      ? "\ndepth check: the large-page config touches "
                        "strictly fewer walk levels per miss than "
                        "4K-only on every program (large leaves end "
                        "one level early), and the two-size mix lands "
                        "between those bounds\n"
                      : "\ndepth check FAILED: a large-page config "
                        "walked as many levels as 4K-only, or a "
                        "two-size mix fell outside the bounds\n");
    return depth_ok ? 0 : 1;
}
