/**
 * @file
 * Extension (paper future work, Sections 3.1/6): multiprogramming.
 * The paper's traces were uniprogrammed and it repeatedly flags the
 * absence of multiprogrammed behaviour as the main threat to its
 * conclusions.  This bench runs several workloads as real processes
 * through core::runMultiprogExperiment — each with its own address
 * space, page-size policy state and page tables, time-sharing one
 * ASID-tagged TLB and one physical memory under a round-robin
 * scheduler — and asks whether the two-page-size advantage survives
 * context switches and cross-process capacity pressure, and how it
 * depends on quantum length.
 *
 * Flags (beyond the shared observability set; see DESIGN.md §10):
 *   --procs N              processes from the mix, 1..4 (default 4)
 *   --quantum N            scheduler quantum in refs (default: sweep
 *                          5000/20000/100000)
 *   --switch-mode M        flush | tagged | tagged+limit
 *                          (default tagged)
 *   --shootdown-cycles C   per-sharer broadcast cost of a promotion/
 *                          demotion shootdown (default 0)
 */

#include "bench/bench_common.h"

#include "core/multiprog.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(
        argc, argv, "Extension",
        "multiprogrammed processes sharing one TLB");

    const char *mix[] = {"espresso", "xnews", "matrix300", "li"};

    std::size_t procs = 4;
    std::string value;
    if (bench::flagValue(argc, argv, "--procs", value)) {
        procs = static_cast<std::size_t>(
            bench::detail::parseCount("--procs", value));
        if (procs < 1 || procs > 4)
            tps_fatal("--procs expects 1..4, got ", procs);
    }
    os::SwitchMode mode = os::SwitchMode::Tagged;
    if (bench::flagValue(argc, argv, "--switch-mode", value))
        mode = os::parseSwitchMode(value);
    double shootdown_cycles = 0.0;
    if (bench::flagValue(argc, argv, "--shootdown-cycles", value)) {
        char *end = nullptr;
        shootdown_cycles = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0' ||
            shootdown_cycles < 0.0)
            tps_fatal("--shootdown-cycles expects a non-negative "
                      "number, got '", value, "'");
    }
    std::vector<std::uint64_t> quanta = {5'000, 20'000, 100'000};
    if (bench::flagValue(argc, argv, "--quantum", value))
        quanta = {bench::detail::parseCount("--quantum", value)};
    const phys::PhysConfig phys = bench::physFromArgs(argc, argv);

    struct Cell
    {
        std::uint64_t quantum;
        std::size_t entries;
    };
    std::vector<Cell> cells;
    for (std::uint64_t quantum : quanta)
        for (std::size_t entries : {std::size_t{32}, std::size_t{64}})
            cells.push_back({quantum, entries});

    struct CellResult
    {
        core::MultiprogResult base;
        core::MultiprogResult two;
    };
    const unsigned threads = bench::resolvedThreads(scale);
    obs::ProgressReporter progress(cells.size(), "cells");
    auto results = util::parallelMapIndex(
        threads, cells.size(), [&](std::size_t c) {
            const Cell &cell = cells[c];
            auto run = [&](const core::PolicySpec &policy) {
                std::vector<core::ProcessSpec> specs;
                for (std::size_t p = 0; p < procs; ++p) {
                    core::ProcessSpec spec;
                    spec.workload = mix[p];
                    spec.policy = policy;
                    specs.push_back(spec);
                }
                TlbConfig tlb;
                tlb.organization = TlbOrganization::FullyAssociative;
                tlb.entries = cell.entries;

                core::MultiprogOptions options;
                options.run.maxRefs = scale.refs;
                options.run.warmupRefs = scale.warmupRefs;
                options.run.phys = phys;
                options.sched.quantumRefs = cell.quantum;
                options.sched.switchMode = mode;
                options.shootdownCycles = shootdown_cycles;
                options.perProcessSeries = true;
                options.label =
                    "multiprog-q" + std::to_string(cell.quantum);
                return core::runMultiprogExperiment(specs, tlb,
                                                    options);
            };
            CellResult out{run(core::PolicySpec::single(kLog2_4K)),
                           run(core::PolicySpec::twoSizes(
                               core::paperPolicy(scale)))};
            progress.tick(2 * scale.refs);
            return out;
        });
    progress.finish();

    stats::TextTable table({"Quantum", "TLB", "CPI 4KB", "CPI 4K/32K",
                            "switches", "shootdowns",
                            "two-size wins?"});
    std::vector<std::vector<std::string>> csv_rows;
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const Cell &cell = cells[c];
        const auto &base = results[c].base;
        const auto &two = results[c].two;
        const bool wins = two.cpiTlb + two.cpiOs <
                          base.cpiTlb + base.cpiOs;
        table.addRow({withCommas(cell.quantum),
                      std::to_string(cell.entries) + "-entry FA",
                      bench::cpi(base.cpiTlb), bench::cpi(two.cpiTlb),
                      withCommas(two.os.contextSwitches),
                      withCommas(two.os.shootdowns),
                      wins ? "yes" : "no"});
        const std::string key = "q" + std::to_string(cell.quantum) +
                                "_" + std::to_string(cell.entries) +
                                "entry";
        csv_rows.push_back({key, formatFixed(base.cpiTlb, 6),
                            formatFixed(two.cpiTlb, 6),
                            formatFixed(two.cpiOs, 6),
                            std::to_string(two.os.contextSwitches),
                            wins ? "yes" : "no"});
        // Full merged + per-process counters, one registry subtree
        // per cell (serial-vs-parallel identical: exports happen here
        // on the main thread, in cell order).
        base.exportTo(bench::registry(),
                      "os.ext_multiprog." + key + ".base");
        two.exportTo(bench::registry(),
                     "os.ext_multiprog." + key + ".two_size");
    }
    bench::record("ext_multiprog",
                  {"config", "cpi_4k", "cpi_two_size", "cpi_os",
                   "ctx_switches", "two_size_wins"},
                  csv_rows);
    table.print(std::cout);
    std::cout << "\nmode = " << os::switchModeName(mode) << ", procs = "
              << procs
              << "; shorter quanta = more context switches = each "
                 "process finds less of its state resident; large "
                 "pages let the shared TLB re-cover working sets "
                 "faster after a switch\n";
    return 0;
}
