/**
 * @file
 * Extension (paper future work, Sections 3.1/6): multiprogramming.
 * The paper's traces were uniprogrammed and it repeatedly flags the
 * absence of multiprogrammed behaviour as the main threat to its
 * conclusions.  This bench interleaves four workloads in fixed
 * context-switch quanta through one shared (ASID-tagged, flush-free)
 * TLB and asks whether the two-page-size advantage survives the
 * extra capacity pressure — and how it depends on quantum length.
 */

#include "bench/bench_common.h"

#include "trace/transforms.h"
#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(
        argc, argv, "Extension", "multiprogrammed workloads sharing one TLB");

    const char *mix[] = {"espresso", "xnews", "matrix300", "li"};

    stats::TextTable table({"Quantum", "TLB", "CPI 4KB", "CPI 4K/32K",
                            "two-size wins?"});
    std::vector<std::vector<std::string>> csv_rows;
    for (std::uint64_t quantum : {5'000ull, 20'000ull, 100'000ull}) {
        for (std::size_t entries : {std::size_t{32}, std::size_t{64}}) {
            auto run = [&](const core::PolicySpec &policy) {
                std::vector<std::unique_ptr<
                    workloads::SyntheticWorkload>> sources;
                std::vector<TraceSource *> raw;
                for (const char *name : mix) {
                    sources.push_back(
                        workloads::findWorkload(name).instantiate());
                    raw.push_back(sources.back().get());
                }
                InterleaveSource merged(raw, quantum);

                TlbConfig tlb;
                tlb.organization =
                    TlbOrganization::FullyAssociative;
                tlb.entries = entries;

                core::RunOptions options;
                options.maxRefs = scale.refs;
                options.warmupRefs = scale.warmupRefs;
                return core::runExperiment(merged, policy, tlb,
                                           options);
            };

            const auto base =
                run(core::PolicySpec::single(kLog2_4K));
            const auto two = run(core::PolicySpec::twoSizes(
                core::paperPolicy(scale)));
            table.addRow({withCommas(quantum),
                          std::to_string(entries) + "-entry FA",
                          bench::cpi(base.cpiTlb),
                          bench::cpi(two.cpiTlb),
                          two.cpiTlb < base.cpiTlb ? "yes" : "no"});
            csv_rows.push_back({"q" + std::to_string(quantum) + "_" +
                                    std::to_string(entries) + "entry",
                                formatFixed(base.cpiTlb, 6),
                                formatFixed(two.cpiTlb, 6),
                                two.cpiTlb < base.cpiTlb ? "yes"
                                                         : "no"});
        }
    }
    bench::record("ext_multiprog",
                  {"config", "cpi_4k", "cpi_two_size", "two_size_wins"},
                  csv_rows);
    table.print(std::cout);
    std::cout << "\nshorter quanta = more context switches = each "
                 "process finds less of its state resident; large "
                 "pages let the shared TLB re-cover working sets "
                 "faster after a switch\n";
    return 0;
}
