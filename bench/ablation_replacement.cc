/**
 * @file
 * Ablation: replacement policy.  The paper assumes LRU throughout
 * (its stack-simulation methodology requires it); real TLBs ship
 * FIFO, random (e.g., MIPS's random register) or tree-PLRU.  This
 * bench quantifies how much of the two-page-size conclusion depends
 * on that assumption.
 */

#include "bench/bench_common.h"

#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(
        argc, argv, "Ablation",
        "replacement policy, 16-entry fully associative");

    const ReplPolicy policies[] = {ReplPolicy::LRU, ReplPolicy::FIFO,
                                   ReplPolicy::Random,
                                   ReplPolicy::TreePLRU};

    for (bool two_sizes : {false, true}) {
        std::cout << "-- " << (two_sizes ? "4K/32K two-size scheme"
                                         : "single 4KB pages")
                  << " --\n";
        stats::TextTable table({"Program", "LRU", "FIFO", "random",
                                "tree-PLRU"});
        std::vector<double> sums(4, 0.0);
        const auto cpis = core::forEachSuiteWorkload(
            scale, [&](const auto &info) {
                std::vector<double> per_policy;
                for (std::size_t p = 0; p < 4; ++p) {
                    auto workload = info.instantiate();
                    TlbConfig tlb;
                    tlb.organization =
                        TlbOrganization::FullyAssociative;
                    tlb.entries = 16;
                    tlb.replacement = policies[p];
                    core::RunOptions options;
                    options.maxRefs = scale.refs;
                    options.warmupRefs = scale.warmupRefs;
                    options.walk = scale.walk;
                    const auto policy =
                        two_sizes ? core::PolicySpec::twoSizes(
                                        core::paperPolicy(scale))
                                  : core::PolicySpec::single(kLog2_4K);
                    per_policy.push_back(
                        core::runExperiment(*workload, policy, tlb,
                                            options)
                            .cpiTlb);
                }
                return per_policy;
            });
        std::vector<std::vector<std::string>> csv_rows;
        for (std::size_t w = 0; w < cpis.size(); ++w) {
            std::vector<std::string> row = {
                workloads::suite()[w].name};
            std::vector<std::string> csv_row = {row.front()};
            for (std::size_t p = 0; p < 4; ++p) {
                sums[p] += cpis[w][p];
                row.push_back(bench::cpi(cpis[w][p]));
                csv_row.push_back(formatFixed(cpis[w][p], 6));
            }
            table.addRow(std::move(row));
            csv_rows.push_back(std::move(csv_row));
        }
        bench::record(two_sizes ? "ablation_replacement_two_size"
                                : "ablation_replacement_4k",
                      {"program", "cpi_lru", "cpi_fifo", "cpi_random",
                       "cpi_tree_plru"},
                      csv_rows);
        std::vector<std::string> avg = {"mean"};
        for (double sum : sums)
            avg.push_back(bench::cpi(sum / 12));
        table.addRule();
        table.addRow(std::move(avg));
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "expected: tree-PLRU tracks LRU closely (it is the "
                 "shipped approximation); random/FIFO cost a bit more "
                 "but preserve the two-size conclusion\n";
    return 0;
}
