/**
 * @file
 * Extension: two-level TLB hierarchies.  Paper Section 1 argues a
 * single-level TLB cannot simply grow (physically-tagged L1 caches
 * put it on the load-use path); the alternative the paper does not
 * evaluate — and later machines built — is a small L1 micro-TLB
 * backed by a big L2.  This bench compares a flat 16-entry FA TLB
 * against 4/8-entry micro-TLBs backed by 64-entry L2s, under both
 * page-size regimes, charging an L2 hit 2 cycles.
 *
 * The interaction with the paper's question: large pages make the
 * *L1* reach problem much easier (4 entries x 32KB = 128KB of reach),
 * so two page sizes and TLB hierarchies are complementary.
 */

#include "bench/bench_common.h"

#include "tlb/fully_assoc.h"
#include "tlb/set_assoc.h"
#include "tlb/two_level_tlb.h"
#include "vm/two_size_policy.h"
#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale =
        bench::banner(argc, argv, "Extension", "two-level TLB hierarchies");

    constexpr double kL2HitCycles = 2.0;
    constexpr double kMissCycles4K = 20.0;
    constexpr double kMissCyclesTwo = 25.0;

    struct Shape
    {
        const char *label;
        std::size_t l1;
        std::size_t l2;
    };
    const Shape shapes[] = {{"4 + 64", 4, 64}, {"8 + 64", 8, 64}};

    for (bool two_sizes : {false, true}) {
        std::cout << "-- "
                  << (two_sizes ? "4K/32K two-size scheme"
                                : "single 4KB pages")
                  << " (CPI includes " << kL2HitCycles
                  << "cy per L2 hit) --\n";
        stats::TextTable table({"Program", "flat 16-entry",
                                "L1 4 + L2 64", "L2-hit% (4+64)",
                                "L1 8 + L2 64"});
        const auto rows = core::forEachSuiteWorkload(
            scale, [&](const auto &info) {
            std::vector<std::string> row = {info.name};

            auto run_flat = [&] {
                auto workload = info.instantiate();
                TlbConfig tlb;
                tlb.organization = TlbOrganization::FullyAssociative;
                tlb.entries = 16;
                core::RunOptions options;
                options.maxRefs = scale.refs;
                options.warmupRefs = scale.warmupRefs;
                options.walk = scale.walk;
                const auto policy =
                    two_sizes ? core::PolicySpec::twoSizes(
                                    core::paperPolicy(scale))
                              : core::PolicySpec::single(kLog2_4K);
                return core::runExperiment(*workload, policy, tlb,
                                           options)
                    .cpiTlb;
            };
            row.push_back(bench::cpi(run_flat()));

            double l2_hit_pct_small = 0.0;
            for (const Shape &shape : shapes) {
                auto workload = info.instantiate();
                TwoLevelTlb tlb(
                    std::make_unique<FullyAssocTlb>(shape.l1),
                    std::make_unique<FullyAssocTlb>(shape.l2));

                std::unique_ptr<PageSizePolicy> policy;
                if (two_sizes) {
                    policy = std::make_unique<TwoSizePolicy>(
                        core::paperPolicy(scale));
                } else {
                    policy = std::make_unique<SingleSizePolicy>(
                        kLog2_4K);
                }
                core::RunOptions options;
                options.maxRefs = scale.refs;
                options.warmupRefs = scale.warmupRefs;
                options.walk = scale.walk;
                const auto result = core::runExperiment(
                    *workload, *policy, tlb, options);

                // CPI = misses x penalty + L2 hits x L2 latency.
                const double instrs = static_cast<double>(
                    result.instructions ? result.instructions : 1);
                const double cpi =
                    (static_cast<double>(
                         tlb.levelStats().l2Misses) *
                         (two_sizes ? kMissCyclesTwo
                                    : kMissCycles4K) +
                     static_cast<double>(tlb.levelStats().l2Hits) *
                         kL2HitCycles) /
                    instrs;
                if (shape.l1 == 4) {
                    l2_hit_pct_small =
                        100.0 *
                        static_cast<double>(
                            tlb.levelStats().l2Hits) /
                        static_cast<double>(
                            result.tlb.accesses ? result.tlb.accesses
                                                : 1);
                    row.push_back(bench::cpi(cpi));
                    row.push_back(
                        formatFixed(l2_hit_pct_small, 2) + "%");
                } else {
                    row.push_back(bench::cpi(cpi));
                }
            }
            return row;
        });
        bench::record(two_sizes ? "ext_two_level_two_size"
                                : "ext_two_level_4k",
                      {"program", "cpi_flat_16", "cpi_l1_4_l2_64",
                       "l2_hit_pct_4_64", "cpi_l1_8_l2_64"},
                      rows);
        for (auto row : rows)
            table.addRow(std::move(row));
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
