/**
 * @file
 * Regenerates Table 5.1: CPI_TLB comparison of set-associative
 * indexing schemes for 16- and 32-entry two-way TLBs —
 *   (1) 4KB pages, normal (exact/small) index,
 *   (2) 4KB pages on large-page-index hardware (the "OS never
 *       allocates large pages" hazard case),
 *   (3) 4KB/32KB two-size scheme, large-page index,
 *   (4) 4KB/32KB two-size scheme, exact index.
 *
 * Paper shape: column (2) is consistently much worse than (1) —
 * hardware for two page sizes *without* OS support loses; (4) is
 * usually at least as good as (3) but often comparable.
 */

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(
        argc, argv, "Table 5.1", "CPI_TLB by set-associative indexing scheme");

    for (const std::size_t entries : {std::size_t{16}, std::size_t{32}}) {
        const auto rows = core::runIndexingStudy(scale, entries, 2);

        std::cout << "-- " << entries << "-entry, two-way --\n";
        stats::TextTable table({"Program", "4KB", "4KB lg-idx",
                                "4K/32K lg-idx", "4K/32K exact"});
        std::vector<std::vector<std::string>> csv_rows;
        for (const auto &row : rows) {
            table.addRow({row.name, bench::cpi(row.cpi4k),
                          bench::cpi(row.cpi4kLargeIndex),
                          bench::cpi(row.cpiTwoLargeIndex),
                          bench::cpi(row.cpiTwoExactIndex)});
            csv_rows.push_back(
                {row.name, formatFixed(row.cpi4k, 6),
                 formatFixed(row.cpi4kLargeIndex, 6),
                 formatFixed(row.cpiTwoLargeIndex, 6),
                 formatFixed(row.cpiTwoExactIndex, 6)});
        }
        bench::record("table51_" + std::to_string(entries) +
                                 "entry",
                             {"program", "cpi_4k", "cpi_4k_large_idx",
                              "cpi_two_large_idx", "cpi_two_exact"},
                             csv_rows);
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
