/**
 * @file
 * Regenerates Figure 5.1: CPI_TLB for a 16-entry fully associative
 * TLB under 4KB, 8KB, 32KB single page sizes and the 4KB/32KB
 * two-page-size scheme (with its 1.25x miss penalty).
 *
 * Paper shape: 32KB single is best (~8x below 4KB); two sizes track
 * 32KB closely (gap mostly the higher penalty); 8KB roughly halves
 * CPI_TLB vs 4KB.
 */

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(
        argc, argv, "Figure 5.1", "CPI_TLB, 16-entry fully associative TLB");

    TlbConfig base;
    base.organization = TlbOrganization::FullyAssociative;
    base.entries = 16;

    const auto rows = core::runCpiStudy(scale, base);

    stats::TextTable table({"Program", "4KB", "8KB", "32KB", "4K/32K",
                            "4K/32K vs 32KB", "large-ref%"});
    std::vector<std::vector<std::string>> csv_rows;
    for (const auto &row : rows) {
        const double vs32 =
            row.cpi32k > 0.0 ? row.cpiTwoSize / row.cpi32k : 0.0;
        table.addRow({row.name, bench::cpi(row.cpi4k),
                      bench::cpi(row.cpi8k), bench::cpi(row.cpi32k),
                      bench::cpi(row.cpiTwoSize),
                      formatFixed(vs32, 2) + "x",
                      formatFixed(row.largeFraction * 100.0, 1)});
        csv_rows.push_back({row.name, formatFixed(row.cpi4k, 6),
                            formatFixed(row.cpi8k, 6),
                            formatFixed(row.cpi32k, 6),
                            formatFixed(row.cpiTwoSize, 6),
                            formatFixed(row.largeFraction, 4)});
    }
    bench::record("fig51",
                         {"program", "cpi_4k", "cpi_8k", "cpi_32k",
                          "cpi_two_size", "large_fraction"},
                         csv_rows);
    table.print(std::cout);

    // The factor-of-~8 headline claim.
    double g4 = 0.0, g32 = 0.0, g2 = 0.0;
    for (const auto &row : rows) {
        g4 += row.cpi4k;
        g32 += row.cpi32k;
        g2 += row.cpiTwoSize;
    }
    std::cout << "\naggregate CPI_TLB  4KB=" << bench::cpi(g4 / 12)
              << "  32KB=" << bench::cpi(g32 / 12)
              << "  4K/32K=" << bench::cpi(g2 / 12)
              << "   (4KB/32KB single-size ratio = "
              << formatFixed(g32 > 0 ? g4 / g32 : 0.0, 1)
              << "x; paper: ~8x)\n";
    return 0;
}
