/**
 * @file
 * Regenerates the Section 5.2 "critical miss penalty increase"
 * analysis: how much slower the two-page-size miss handler could be
 * while still matching plain 4KB pages,
 *     delta_mp = (MPI(4KB)/MPI(4K/32K) - 1) x 100%.
 *
 * Paper shape: 30%..1200% for the programs that improve — i.e. the
 * assumed 25% handler slowdown has ample headroom.
 */

#include <cmath>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(argc, argv, "Sec 5.2 delta-mp",
        "tolerable miss-penalty increase for two page sizes");

    TlbConfig base;
    base.organization = TlbOrganization::SetAssociative;
    base.entries = 32;
    base.ways = 2;
    base.scheme = IndexScheme::Exact;

    const auto rows = core::runCpiStudy(scale, base);

    stats::TextTable table({"Program", "MPI(4KB)", "MPI(4K/32K)",
                            "delta-mp", "improves?"});
    std::vector<std::vector<std::string>> csv_rows;
    for (const auto &row : rows) {
        const double dmp = row.deltaMp();
        table.addRow(
            {row.name, formatFixed(row.mpi4k * 1000.0, 3) + "e-3",
             formatFixed(row.mpiTwoSize * 1000.0, 3) + "e-3",
             std::isinf(dmp) ? "inf" : formatFixed(dmp, 0) + "%",
             row.cpiTwoSize < row.cpi4k ? "yes" : "no"});
        csv_rows.push_back(
            {row.name, formatFixed(row.mpi4k, 8),
             formatFixed(row.mpiTwoSize, 8),
             std::isinf(dmp) ? "inf" : formatFixed(dmp, 2),
             row.cpiTwoSize < row.cpi4k ? "yes" : "no"});
    }
    bench::record("delta_mp",
                  {"program", "mpi_4k", "mpi_two_size", "delta_mp_pct",
                   "improves"},
                  csv_rows);
    table.print(std::cout);
    std::cout << "\npaper: delta-mp spans ~30%..1200% for improving "
                 "programs (32-entry two-way)\n";
    return 0;
}
