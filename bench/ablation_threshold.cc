/**
 * @file
 * Ablation: the Section 3.4 promotion threshold.  The paper fixes it
 * at "half or more of the blocks" (4 of 8); this bench sweeps 1..8
 * and also re-enables demotion, showing the tradeoff the paper's
 * choice sits on: lower thresholds promote more (better CPI_TLB,
 * bigger working sets), higher thresholds the reverse, and the
 * half-the-blocks rule caps WS inflation at 2x.
 */

#include "bench/bench_common.h"

#include "workloads/registry.h"
#include "wset/avg_working_set.h"
#include "wset/two_size_working_set.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(
        argc, argv, "Ablation (Sec 3.4)", "promotion threshold sweep");

    TlbConfig tlb;
    tlb.organization = TlbOrganization::FullyAssociative;
    tlb.entries = 16;

    stats::TextTable table({"Threshold", "mean CPI_TLB",
                            "mean WS_norm", "large-ref%",
                            "promotions"});
    struct Cell
    {
        double cpi = 0.0;
        double wsNorm = 0.0;
        double largeFraction = 0.0;
        std::uint64_t promotions = 0;
    };
    std::vector<std::vector<std::string>> csv_rows;
    for (unsigned threshold = 1; threshold <= 8; ++threshold) {
        const auto cells = core::forEachSuiteWorkload(
            scale, [&](const auto &info) {
                auto workload = info.instantiate();

                TwoSizeConfig policy = core::paperPolicy(scale);
                policy.promoteThreshold = threshold;

                core::RunOptions options;
                options.maxRefs = scale.refs;
                options.warmupRefs = scale.warmupRefs;
                options.walk = scale.walk;
                const auto result = core::runExperiment(
                    *workload, core::PolicySpec::twoSizes(policy), tlb,
                    options);

                Cell cell;
                cell.cpi = result.cpiTlb;
                cell.largeFraction = result.policy.largeFraction();
                cell.promotions = result.policy.promotions;

                // Exact two-size working set vs the 4KB baseline.
                workload->reset();
                TwoSizeWorkingSet two_ws(policy);
                AvgWorkingSet base_ws({kLog2_4K}, {scale.window});
                MemRef ref;
                for (std::uint64_t n = 0;
                     n < scale.refs / 2 && workload->next(ref); ++n) {
                    two_ws.observe(ref.vaddr);
                    base_ws.observe(ref.vaddr);
                }
                base_ws.finish();
                if (base_ws.averageBytes(0, 0) > 0)
                    cell.wsNorm = two_ws.averageBytes() /
                                  base_ws.averageBytes(0, 0);
                return cell;
            });
        double cpi_sum = 0.0, ws_sum = 0.0, large_sum = 0.0;
        std::uint64_t promotions = 0;
        for (const Cell &cell : cells) {
            cpi_sum += cell.cpi;
            ws_sum += cell.wsNorm;
            large_sum += cell.largeFraction;
            promotions += cell.promotions;
        }
        const double n = 12.0;
        table.addRow({std::to_string(threshold),
                      bench::cpi(cpi_sum / n),
                      bench::ratio(ws_sum / n),
                      formatFixed(large_sum / n * 100.0, 1),
                      withCommas(promotions)});
        csv_rows.push_back({"t" + std::to_string(threshold),
                            formatFixed(cpi_sum / n, 6),
                            formatFixed(ws_sum / n, 4),
                            formatFixed(large_sum / n, 6),
                            std::to_string(promotions)});
    }
    bench::record("ablation_threshold",
                  {"threshold", "mean_cpi_tlb", "mean_ws_norm",
                   "large_fraction", "promotions"},
                  csv_rows);
    table.print(std::cout);
    std::cout << "\npaper's choice is threshold 4 (half the blocks): "
                 "WS inflation provably capped at 2x\n";
    return 0;
}
