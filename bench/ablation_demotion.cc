/**
 * @file
 * Ablation: demotion.  The paper's Section 3.4 policy is silent on
 * when (or whether) a promoted chunk reverts to small pages.  At the
 * paper's T = 1e7 the question barely arises — sweep periods fit
 * inside the window — but at scaled-down T a symmetric demote rule
 * re-demotes every chunk on each pass and re-promotes it four blocks
 * later, churning TLB shootdowns.  This bench measures that churn,
 * justifying the library's no-demotion default (DESIGN.md) with data.
 */

#include "bench/bench_common.h"

#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(argc, argv, "Ablation (Sec 3.4)",
        "demotion threshold: churn at scaled-down T");

    // Two-way set-associative: the organization where re-promotion's
    // small-page phases also collide with resident large pages in the
    // index (the churn shows up as misses, not just shootdowns).
    TlbConfig tlb;
    tlb.organization = TlbOrganization::SetAssociative;
    tlb.entries = 16;
    tlb.ways = 2;
    tlb.scheme = IndexScheme::Exact;

    struct Variant
    {
        const char *label;
        unsigned demoteThreshold; // 0 = never demote
    };
    const Variant variants[] = {{"never (default)", 0},
                                {"hysteresis (<2)", 2},
                                {"symmetric (<4)", 4}};

    stats::TextTable table({"Demotion", "mean CPI_TLB", "promotions",
                            "demotions", "invalidations"});
    std::vector<std::vector<std::string>> csv_rows;
    for (const Variant &variant : variants) {
        const auto results = core::forEachSuiteWorkload(
            scale, [&](const auto &info) {
                auto workload = info.instantiate();
                TwoSizeConfig policy = core::paperPolicy(scale);
                policy.demoteThreshold = variant.demoteThreshold;
                core::RunOptions options;
                options.maxRefs = scale.refs;
                options.warmupRefs = scale.warmupRefs;
                options.walk = scale.walk;
                return core::runExperiment(
                    *workload, core::PolicySpec::twoSizes(policy), tlb,
                    options);
            });
        double cpi_sum = 0.0;
        std::uint64_t promotions = 0, demotions = 0, invalidations = 0;
        for (const auto &result : results) {
            cpi_sum += result.cpiTlb;
            promotions += result.policy.promotions;
            demotions += result.policy.demotions;
            invalidations += result.tlb.invalidations;
        }
        table.addRow({variant.label, bench::cpi(cpi_sum / 12),
                      withCommas(promotions), withCommas(demotions),
                      withCommas(invalidations)});
        csv_rows.push_back({variant.label,
                            formatFixed(cpi_sum / 12, 6),
                            std::to_string(promotions),
                            std::to_string(demotions),
                            std::to_string(invalidations)});
    }
    bench::record("ablation_demotion",
                  {"variant", "mean_cpi_tlb", "promotions", "demotions",
                   "invalidations"},
                  csv_rows);
    table.print(std::cout);
    std::cout << "\nreading: demotion roughly triples shootdown "
                 "traffic for a small miss-count saving; CPI_TLB "
                 "ignores per-remap OS work (promotionCycles = 0 "
                 "here), so charging any realistic copy/zero/table "
                 "cost favours the no-demotion default.  At paper "
                 "scale (T = 1e7) the variants converge: whole passes "
                 "stay in-window and demotion rarely fires\n";
    return 0;
}
