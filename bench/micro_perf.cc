/**
 * @file
 * google-benchmark micro-suite for the simulator itself: TLB lookup
 * throughput per organization, policy classification cost, stack
 * simulation cost, and trace generation speed.  These are the numbers
 * that determine how far above the default TPS_REFS scale the harness
 * can be pushed (the paper burned 5.5 CPU-months; this reports what a
 * modern replication costs per million references).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "bench/bench_common.h"
#include "core/sweep.h"
#include "util/format.h"
#include "stacksim/all_assoc.h"
#include "stacksim/lru_stack.h"
#include "tlb/factory.h"
#include "trace/vector_trace.h"
#include "vm/two_size_policy.h"
#include "workloads/registry.h"
#include "wset/avg_working_set.h"

namespace
{

using namespace tps;

/** Shared captured trace so generation cost is excluded. */
const VectorTrace &
capturedTrace()
{
    static const VectorTrace trace = [] {
        auto workload = workloads::findWorkload("doduc").instantiate();
        return materialize(*workload, 200'000);
    }();
    return trace;
}

void
BM_WorkloadGeneration(benchmark::State &state)
{
    const auto &info = workloads::suite()[static_cast<std::size_t>(
        state.range(0))];
    auto workload = info.instantiate();
    MemRef ref;
    for (auto _ : state) {
        workload->next(ref);
        benchmark::DoNotOptimize(ref.vaddr);
    }
    state.SetLabel(info.name);
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_WorkloadGeneration)->Arg(0)->Arg(7)->Arg(9);

void
BM_TlbAccess(benchmark::State &state)
{
    TlbConfig config;
    switch (state.range(0)) {
      case 0:
        config.organization = TlbOrganization::FullyAssociative;
        config.entries = 16;
        break;
      case 1:
        config.organization = TlbOrganization::FullyAssociative;
        config.entries = 64;
        break;
      case 2:
        config.organization = TlbOrganization::SetAssociative;
        config.entries = 32;
        config.ways = 2;
        break;
      default:
        config.organization = TlbOrganization::Split;
        config.entries = 32;
        config.splitLargeEntries = 8;
        break;
    }
    auto tlb = makeTlb(config);
    const auto &refs = capturedTrace().refs();
    std::size_t i = 0;
    for (auto _ : state) {
        const MemRef &ref = refs[i];
        benchmark::DoNotOptimize(
            tlb->access(pageOf(ref.vaddr, kLog2_4K), ref.vaddr));
        i = (i + 1) % refs.size();
    }
    state.SetLabel(config.describe());
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_TlbAccess)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void
BM_TwoSizePolicyClassify(benchmark::State &state)
{
    TwoSizeConfig config;
    config.window = 100'000;
    TwoSizePolicy policy(config);
    const auto &refs = capturedTrace().refs();
    std::size_t i = 0;
    RefTime now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            policy.classify(refs[i].vaddr, ++now));
        i = (i + 1) % refs.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_TwoSizePolicyClassify);

void
BM_LruStackObserve(benchmark::State &state)
{
    LruStackSim sim(static_cast<std::size_t>(state.range(0)));
    const auto &refs = capturedTrace().refs();
    std::size_t i = 0;
    for (auto _ : state) {
        sim.observe(refs[i].vaddr >> kLog2_4K);
        i = (i + 1) % refs.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_LruStackObserve)->Arg(16)->Arg(64)->Arg(256);

void
BM_AllAssocObserve(benchmark::State &state)
{
    // The "84 configs at ~2x the cost of one" tycho tradeoff.
    AllAssocSim sim(static_cast<unsigned>(state.range(0)), 8);
    const auto &refs = capturedTrace().refs();
    std::size_t i = 0;
    for (auto _ : state) {
        sim.observe(refs[i].vaddr >> kLog2_4K);
        i = (i + 1) % refs.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_AllAssocObserve)->Arg(2)->Arg(4)->Arg(6);

void
BM_ReplayPerRef(benchmark::State &state)
{
    // One virtual next() per reference: the pre-batching replay cost.
    VectorTrace trace = capturedTrace(); // private cursor
    MemRef ref;
    for (auto _ : state) {
        if (!trace.next(ref))
            trace.reset();
        benchmark::DoNotOptimize(ref.vaddr);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_ReplayPerRef);

void
BM_ReplayBatch(benchmark::State &state)
{
    // fill() into a stack chunk: what core::runExperiment now does.
    VectorTrace trace = capturedTrace();
    constexpr std::size_t kBatch = 4096;
    static MemRef buffer[kBatch];
    std::size_t pos = kBatch, got = kBatch;
    for (auto _ : state) {
        if (pos >= got) {
            got = trace.fill(buffer, kBatch);
            if (got == 0) {
                trace.reset();
                got = trace.fill(buffer, kBatch);
            }
            pos = 0;
        }
        benchmark::DoNotOptimize(buffer[pos++].vaddr);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_ReplayBatch);

void
BM_AvgWorkingSetObserve(benchmark::State &state)
{
    AvgWorkingSet wset({kLog2_4K, kLog2_8K, kLog2_16K, kLog2_32K},
                       {100'000});
    const auto &refs = capturedTrace().refs();
    std::size_t i = 0;
    for (auto _ : state) {
        wset.observe(refs[i].vaddr);
        i = (i + 1) % refs.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_AvgWorkingSetObserve);

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Headline numbers for the PR-over-PR perf trajectory, written as
 * BENCH_micro_perf.json (path override: TPS_BENCH_JSON) in the same
 * tps-stats-v1 registry schema `--stats-out` uses.  Three contrasts:
 * batched fill() vs per-ref next() replay, the batched experiment
 * engine vs the per-ref oracle on one cell, and a shared-pass
 * multi-config sweep run serially vs on 4 worker threads (the
 * parallel leg is skipped — and its keys withheld — on single-core
 * machines, where it could only measure scheduling overhead).
 */
void
writePerfJson(const core::StudyScale &scale)
{
    // --- replay: per-ref next() vs batched fill() ------------------
    const std::uint64_t replay_refs = 2'000'000;
    VectorTrace trace = capturedTrace();
    double per_ref_s = 0.0;
    {
        const auto start = Clock::now();
        MemRef ref;
        for (std::uint64_t n = 0; n < replay_refs; ++n) {
            if (!trace.next(ref))
                trace.reset();
            benchmark::DoNotOptimize(ref.vaddr);
        }
        per_ref_s = secondsSince(start);
    }
    double batch_s = 0.0;
    {
        trace.reset();
        constexpr std::size_t kBatch = 4096;
        static MemRef buffer[kBatch];
        const auto start = Clock::now();
        std::uint64_t n = 0;
        while (n < replay_refs) {
            std::size_t got = trace.fill(buffer, kBatch);
            if (got == 0) {
                trace.reset();
                got = trace.fill(buffer, kBatch);
            }
            for (std::size_t i = 0; i < got; ++i)
                benchmark::DoNotOptimize(buffer[i].vaddr);
            n += got;
        }
        batch_s = secondsSince(start);
    }

    // --- experiment engines: batched vs the per-ref oracle ---------
    // One representative two-size cell over a materialized trace, run
    // through both ExecMode paths: the per-PR headline for the batch
    // probe + chunked classification work.
    const std::uint64_t engine_refs = envOr("TPS_REFS", 200'000) * 10;
    double batched_engine_s = 0.0;
    double per_ref_engine_s = 0.0;
    bool engines_identical;
    {
        auto workload = workloads::findWorkload("doduc").instantiate();
        const VectorTrace engine_trace =
            materialize(*workload, engine_refs);
        TlbConfig tlb;
        tlb.organization = TlbOrganization::FullyAssociative;
        tlb.entries = 64;
        const auto policy =
            core::PolicySpec::twoSizes(TwoSizeConfig{});
        core::RunOptions engine_options;
        engine_options.maxRefs = engine_refs;
        engine_options.chunkRefs = scale.chunkRefs;

        VectorTrace cursor = engine_trace; // private replay cursor
        engine_options.exec = core::ExecMode::Batched;
        auto start = Clock::now();
        const auto batched =
            runExperiment(cursor, policy, tlb, engine_options);
        batched_engine_s = secondsSince(start);

        engine_options.exec = core::ExecMode::PerRef;
        start = Clock::now();
        const auto per_ref =
            runExperiment(cursor, policy, tlb, engine_options);
        per_ref_engine_s = secondsSince(start);

        engines_identical =
            batched.tlb.misses == per_ref.tlb.misses &&
            batched.tlb.hits == per_ref.tlb.hits &&
            batched.policy.promotions == per_ref.policy.promotions &&
            batched.cpiTlb == per_ref.cpiTlb;
    }

    // --- walk model: structural-penalty engine cost ----------------
    // The same representative cell with `--walk-model` on: how much
    // the radix walker + PWC cost on top of the flat-constant path,
    // plus the deterministic walk counters the gate can exact-match.
    const std::uint64_t walk_refs = envOr("TPS_REFS", 200'000) * 5;
    double walk_off_s = 0.0;
    double walk_on_s = 0.0;
    core::ExperimentResult walk_result;
    {
        auto workload = workloads::findWorkload("doduc").instantiate();
        const VectorTrace walk_trace = materialize(*workload, walk_refs);
        TlbConfig tlb;
        tlb.organization = TlbOrganization::FullyAssociative;
        tlb.entries = 64;
        const auto policy =
            core::PolicySpec::twoSizes(TwoSizeConfig{});
        core::RunOptions walk_options;
        walk_options.maxRefs = walk_refs;
        walk_options.chunkRefs = scale.chunkRefs;

        VectorTrace cursor = walk_trace;
        auto start = Clock::now();
        (void)runExperiment(cursor, policy, tlb, walk_options);
        walk_off_s = secondsSince(start);

        walk_options.walk = scale.walk;
        walk_options.walk.enabled = true;
        start = Clock::now();
        walk_result = runExperiment(cursor, policy, tlb, walk_options);
        walk_on_s = secondsSince(start);
    }

    // --- sweep: shared-pass serial, vs 4 threads where possible ----
    const std::uint64_t cell_refs = envOr("TPS_REFS", 200'000);
    const unsigned par_threads = 4;
    const unsigned hardware_threads =
        std::thread::hardware_concurrency();
    // A 4-worker run on a single-core machine measures scheduler
    // overhead, not the simulator; report serial-only there instead
    // of publishing a fake "parallel" number.
    const bool run_parallel = hardware_threads > 1;
    core::RunOptions options;
    options.maxRefs = cell_refs;
    options.chunkRefs = scale.chunkRefs;
    core::SweepRunner sweep;
    sweep.workloads({"li", "espresso", "doduc", "worm"})
        .options(options)
        .sharedPass(true);
    for (std::size_t entries : {16, 32, 64}) {
        TlbConfig tlb;
        tlb.organization = TlbOrganization::FullyAssociative;
        tlb.entries = entries;
        sweep.configuration(tlb, core::PolicySpec::single(kLog2_4K));
        sweep.configuration(
            tlb, core::PolicySpec::twoSizes(TwoSizeConfig{}));
    }
    const double total_refs =
        static_cast<double>(cell_refs) * static_cast<double>(sweep.cells());

    sweep.threads(1);
    // Untimed warmup leg: materializes the process-wide trace cache so
    // the timed runs below measure simulation throughput, not trace
    // synthesis.
    (void)sweep.run();
    // Best-of-3 wall-clock: scheduling noise from machine load only
    // ever adds time, so the minimum is the robust estimator (what
    // google-benchmark repetitions report as "min").
    constexpr int kTimedRuns = 3;
    std::vector<core::SweepCell> serial_cells;
    double serial_s = 0.0;
    for (int run = 0; run < kTimedRuns; ++run) {
        const auto start = Clock::now();
        auto cells = sweep.run();
        const double s = secondsSince(start);
        if (run == 0 || s < serial_s) {
            serial_s = s;
            serial_cells = std::move(cells);
        }
    }

    std::vector<core::SweepCell> parallel_cells;
    double parallel_s = 0.0;
    if (run_parallel) {
        sweep.threads(par_threads);
        for (int run = 0; run < kTimedRuns; ++run) {
            const auto start = Clock::now();
            auto cells = sweep.run();
            const double s = secondsSince(start);
            if (run == 0 || s < parallel_s) {
                parallel_s = s;
                parallel_cells = std::move(cells);
            }
        }
    }

    // Guard: the two runs must agree bit-for-bit (the determinism
    // test asserts this too; recheck here since we just ran both).
    bool identical = !run_parallel ||
                     serial_cells.size() == parallel_cells.size();
    if (run_parallel)
        for (std::size_t i = 0; identical && i < serial_cells.size();
             ++i)
            identical = serial_cells[i].result.tlb.misses ==
                            parallel_cells[i].result.tlb.misses &&
                        serial_cells[i].result.cpiTlb ==
                            parallel_cells[i].result.cpiTlb;

    obs::StatRegistry reg;
    reg.addCounter("micro_perf.replay.refs", replay_refs);
    reg.addValue("micro_perf.replay.per_ref_refs_per_sec",
                 per_ref_s > 0
                     ? static_cast<double>(replay_refs) / per_ref_s
                     : 0.0);
    reg.addValue("micro_perf.replay.batch_refs_per_sec",
                 batch_s > 0
                     ? static_cast<double>(replay_refs) / batch_s
                     : 0.0);
    reg.addValue("micro_perf.replay.batch_speedup",
                 batch_s > 0 ? per_ref_s / batch_s : 0.0);
    reg.addCounter("micro_perf.engine.refs", engine_refs);
    reg.addCounter("micro_perf.engine.chunk_refs", scale.chunkRefs);
    reg.addValue("micro_perf.engine.batched_refs_per_sec",
                 batched_engine_s > 0
                     ? static_cast<double>(engine_refs) /
                           batched_engine_s
                     : 0.0);
    reg.addValue("micro_perf.engine.per_ref_refs_per_sec",
                 per_ref_engine_s > 0
                     ? static_cast<double>(engine_refs) /
                           per_ref_engine_s
                     : 0.0);
    reg.addValue("micro_perf.engine.batched_speedup",
                 batched_engine_s > 0
                     ? per_ref_engine_s / batched_engine_s
                     : 0.0);
    reg.addText("micro_perf.engine.results_identical",
                engines_identical ? "true" : "false");
    reg.addCounter("micro_perf.walk.refs", walk_refs);
    reg.addCounter("micro_perf.walk.walks", walk_result.walk.walks);
    reg.addCounter("micro_perf.walk.level_accesses",
                   walk_result.walk.levelAccesses);
    reg.addCounter("micro_perf.walk.pwc_hits",
                   walk_result.walk.pwcHits);
    reg.addValue("micro_perf.walk.cpi_walk", walk_result.cpiWalk);
    reg.addValue("micro_perf.walk.refs_per_sec",
                 walk_on_s > 0
                     ? static_cast<double>(walk_refs) / walk_on_s
                     : 0.0);
    reg.addValue("micro_perf.walk.slowdown_vs_constant",
                 walk_off_s > 0 ? walk_on_s / walk_off_s : 0.0);
    reg.addCounter("micro_perf.sweep.cells", sweep.cells());
    reg.addCounter("micro_perf.sweep.refs_per_cell", cell_refs);
    reg.addValue("micro_perf.sweep.serial_seconds", serial_s);
    reg.addValue("micro_perf.sweep.serial_refs_per_sec",
                 serial_s > 0 ? total_refs / serial_s : 0.0);
    if (run_parallel) {
        reg.addCounter("micro_perf.sweep.threads", par_threads);
        reg.addValue("micro_perf.sweep.parallel_seconds", parallel_s);
        reg.addValue("micro_perf.sweep.parallel_refs_per_sec",
                     parallel_s > 0 ? total_refs / parallel_s : 0.0);
        reg.addValue("micro_perf.sweep.parallel_speedup",
                     parallel_s > 0 ? serial_s / parallel_s : 0.0);
    } else {
        reg.addText("micro_perf.sweep.parallel_skipped",
                    "skipped: single hardware thread");
    }
    reg.addCounter("micro_perf.sweep.hardware_threads",
                   hardware_threads);
    reg.addText("micro_perf.sweep.results_identical",
                identical ? "true" : "false");

    // The same numbers land in --stats-out (if requested)...
    bench::registry().merge(reg);

    // ...and always in the headline BENCH json.
    const char *path_env = std::getenv("TPS_BENCH_JSON");
    const std::string path =
        path_env != nullptr && path_env[0] != '\0'
            ? path_env
            : "BENCH_micro_perf.json";
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "warn: cannot write %s\n", path.c_str());
        return;
    }
    reg.writeJson(out, &bench::manifest());
    std::fprintf(stderr, "info: wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    // Wire up --stats-out/--trace-out/--progress/--threads, then strip
    // them: google-benchmark exits on arguments it does not recognize.
    const tps::core::StudyScale scale =
        tps::bench::banner(argc, argv, "micro_perf",
                           "simulator micro-benchmarks");
    tps::bench::stripObsArgs(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    writePerfJson(scale);
    return 0;
}
