/**
 * @file
 * google-benchmark micro-suite for the simulator itself: TLB lookup
 * throughput per organization, policy classification cost, stack
 * simulation cost, and trace generation speed.  These are the numbers
 * that determine how far above the default TPS_REFS scale the harness
 * can be pushed (the paper burned 5.5 CPU-months; this reports what a
 * modern replication costs per million references).
 */

#include <benchmark/benchmark.h>

#include "stacksim/all_assoc.h"
#include "stacksim/lru_stack.h"
#include "tlb/factory.h"
#include "trace/vector_trace.h"
#include "vm/two_size_policy.h"
#include "workloads/registry.h"
#include "wset/avg_working_set.h"

namespace
{

using namespace tps;

/** Shared captured trace so generation cost is excluded. */
const VectorTrace &
capturedTrace()
{
    static const VectorTrace trace = [] {
        auto workload = workloads::findWorkload("doduc").instantiate();
        return materialize(*workload, 200'000);
    }();
    return trace;
}

void
BM_WorkloadGeneration(benchmark::State &state)
{
    const auto &info = workloads::suite()[static_cast<std::size_t>(
        state.range(0))];
    auto workload = info.instantiate();
    MemRef ref;
    for (auto _ : state) {
        workload->next(ref);
        benchmark::DoNotOptimize(ref.vaddr);
    }
    state.SetLabel(info.name);
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_WorkloadGeneration)->Arg(0)->Arg(7)->Arg(9);

void
BM_TlbAccess(benchmark::State &state)
{
    TlbConfig config;
    switch (state.range(0)) {
      case 0:
        config.organization = TlbOrganization::FullyAssociative;
        config.entries = 16;
        break;
      case 1:
        config.organization = TlbOrganization::FullyAssociative;
        config.entries = 64;
        break;
      case 2:
        config.organization = TlbOrganization::SetAssociative;
        config.entries = 32;
        config.ways = 2;
        break;
      default:
        config.organization = TlbOrganization::Split;
        config.entries = 32;
        config.splitLargeEntries = 8;
        break;
    }
    auto tlb = makeTlb(config);
    const auto &refs = capturedTrace().refs();
    std::size_t i = 0;
    for (auto _ : state) {
        const MemRef &ref = refs[i];
        benchmark::DoNotOptimize(
            tlb->access(pageOf(ref.vaddr, kLog2_4K), ref.vaddr));
        i = (i + 1) % refs.size();
    }
    state.SetLabel(config.describe());
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_TlbAccess)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void
BM_TwoSizePolicyClassify(benchmark::State &state)
{
    TwoSizeConfig config;
    config.window = 100'000;
    TwoSizePolicy policy(config);
    const auto &refs = capturedTrace().refs();
    std::size_t i = 0;
    RefTime now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            policy.classify(refs[i].vaddr, ++now));
        i = (i + 1) % refs.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_TwoSizePolicyClassify);

void
BM_LruStackObserve(benchmark::State &state)
{
    LruStackSim sim(static_cast<std::size_t>(state.range(0)));
    const auto &refs = capturedTrace().refs();
    std::size_t i = 0;
    for (auto _ : state) {
        sim.observe(refs[i].vaddr >> kLog2_4K);
        i = (i + 1) % refs.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_LruStackObserve)->Arg(16)->Arg(64)->Arg(256);

void
BM_AllAssocObserve(benchmark::State &state)
{
    // The "84 configs at ~2x the cost of one" tycho tradeoff.
    AllAssocSim sim(static_cast<unsigned>(state.range(0)), 8);
    const auto &refs = capturedTrace().refs();
    std::size_t i = 0;
    for (auto _ : state) {
        sim.observe(refs[i].vaddr >> kLog2_4K);
        i = (i + 1) % refs.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_AllAssocObserve)->Arg(2)->Arg(4)->Arg(6);

void
BM_AvgWorkingSetObserve(benchmark::State &state)
{
    AvgWorkingSet wset({kLog2_4K, kLog2_8K, kLog2_16K, kLog2_32K},
                       {100'000});
    const auto &refs = capturedTrace().refs();
    std::size_t i = 0;
    for (auto _ : state) {
        wset.observe(refs[i].vaddr);
        i = (i + 1) % refs.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_AvgWorkingSetObserve);

} // namespace

BENCHMARK_MAIN();
