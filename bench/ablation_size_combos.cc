/**
 * @file
 * Ablation: the page-size combinations the paper measured but cut for
 * space ("We also have similar data for combinations of 4KB/16KB and
 * 4KB/64KB", Section 3.2).  Reproduces the Figure 4.2/5.1-style
 * summary for 4K/16K, 4K/32K and 4K/64K.
 */

#include "bench/bench_common.h"

#include "workloads/registry.h"
#include "wset/avg_working_set.h"
#include "wset/two_size_working_set.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(
        argc, argv, "Ablation (Sec 3.2)", "4K/16K vs 4K/32K vs 4K/64K");

    TlbConfig tlb;
    tlb.organization = TlbOrganization::FullyAssociative;
    tlb.entries = 16;

    stats::TextTable table({"Combo", "mean CPI_TLB", "vs 4KB",
                            "mean WS_norm", "large-ref%"});

    // 4KB single-size baseline.
    double base_cpi = 0.0;
    for (double cpi : core::forEachSuiteWorkload(
             scale, [&](const auto &info) {
                 auto workload = info.instantiate();
                 core::RunOptions options;
                 options.maxRefs = scale.refs;
                 options.warmupRefs = scale.warmupRefs;
                 options.walk = scale.walk;
                 return core::runExperiment(
                            *workload,
                            core::PolicySpec::single(kLog2_4K), tlb,
                            options)
                     .cpiTlb;
             }))
        base_cpi += cpi;
    table.addRow({"4KB only", bench::cpi(base_cpi / 12), "1.00x",
                  "1.00", "0.0"});
    std::vector<std::vector<std::string>> csv_rows;
    csv_rows.push_back({"4k_only", formatFixed(base_cpi / 12, 6),
                        "1.0", "1.0", "0.0"});

    struct Cell
    {
        double cpi = 0.0;
        double wsNorm = 0.0;
        double largeFraction = 0.0;
    };
    for (unsigned large_log2 : {kLog2_16K, kLog2_32K, kLog2_64K}) {
        const auto cells = core::forEachSuiteWorkload(
            scale, [&](const auto &info) {
                auto workload = info.instantiate();

                TwoSizeConfig policy = core::paperPolicy(scale);
                policy.largeLog2 = large_log2;

                TlbConfig combo_tlb = tlb;
                combo_tlb.largeLog2 = large_log2;

                core::RunOptions options;
                options.maxRefs = scale.refs;
                options.warmupRefs = scale.warmupRefs;
                options.walk = scale.walk;
                const auto result = core::runExperiment(
                    *workload, core::PolicySpec::twoSizes(policy),
                    combo_tlb, options);

                Cell cell;
                cell.cpi = result.cpiTlb;
                cell.largeFraction = result.policy.largeFraction();

                workload->reset();
                TwoSizeWorkingSet two_ws(policy);
                AvgWorkingSet base_ws({kLog2_4K}, {scale.window});
                MemRef ref;
                for (std::uint64_t n = 0;
                     n < scale.refs / 2 && workload->next(ref); ++n) {
                    two_ws.observe(ref.vaddr);
                    base_ws.observe(ref.vaddr);
                }
                base_ws.finish();
                if (base_ws.averageBytes(0, 0) > 0)
                    cell.wsNorm = two_ws.averageBytes() /
                                  base_ws.averageBytes(0, 0);
                return cell;
            });
        double cpi_sum = 0.0, ws_sum = 0.0, large_sum = 0.0;
        for (const Cell &cell : cells) {
            cpi_sum += cell.cpi;
            ws_sum += cell.wsNorm;
            large_sum += cell.largeFraction;
        }
        const double n = 12.0;
        const double cpi = cpi_sum / n;
        table.addRow({std::string("4KB/") +
                          formatBytes(std::uint64_t{1} << large_log2),
                      bench::cpi(cpi),
                      formatFixed(cpi > 0 ? base_cpi / 12 / cpi : 0.0,
                                  2) +
                          "x",
                      bench::ratio(ws_sum / n),
                      formatFixed(large_sum / n * 100.0, 1)});
        csv_rows.push_back(
            {"4k_" + std::to_string((std::uint64_t{1} << large_log2) /
                                    1024) +
                 "k",
             formatFixed(cpi, 6),
             formatFixed(cpi > 0 ? base_cpi / 12 / cpi : 0.0, 4),
             formatFixed(ws_sum / n, 4), formatFixed(large_sum / n, 6)});
    }
    bench::record("ablation_size_combos",
                  {"combo", "mean_cpi_tlb", "speedup_vs_4k",
                   "mean_ws_norm", "large_fraction"},
                  csv_rows);
    table.print(std::cout);
    std::cout << "\nexpected shape: bigger large pages map more per "
                 "entry (better CPI) but cost more working set; "
                 "4K/32K is the paper's sweet spot\n";
    return 0;
}
