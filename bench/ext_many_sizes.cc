/**
 * @file
 * Extension (paper Section 1, explicitly left open): more than two
 * page sizes.  The R4000 (13 sizes) and SuperSPARC (4) already had
 * the hardware; the paper declined to study it for want of an OS
 * policy.  MultiSizePolicy supplies a hierarchical generalization of
 * the paper's Section 3.4 rule; this bench compares 4K-only, 4K/32K
 * and 4K/32K/256K on a fully associative TLB (the organization the
 * paper says multiple sizes really want).
 */

#include "bench/bench_common.h"

#include "vm/multi_size_policy.h"
#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(
        argc, argv, "Extension", "three page sizes (4K/32K/256K), 16-entry FA");

    stats::TextTable table({"Program", "4KB", "4K/32K", "4K/32K/256K",
                            "256K-mapped refs%"});
    struct Cell
    {
        std::string name;
        double cpi1 = 0.0, cpi2 = 0.0, cpi3 = 0.0;
        double pct256 = 0.0;
    };
    const auto cells = core::forEachSuiteWorkload(
        scale, [&](const auto &info) {
        TlbConfig tlb;
        tlb.organization = TlbOrganization::FullyAssociative;
        tlb.entries = 16;

        core::RunOptions options;
        options.maxRefs = scale.refs;
        options.warmupRefs = scale.warmupRefs;
        options.walk = scale.walk;

        auto workload = info.instantiate();
        const double cpi1 =
            core::runExperiment(*workload,
                                core::PolicySpec::single(kLog2_4K),
                                tlb, options)
                .cpiTlb;

        workload->reset();
        const double cpi2 =
            core::runExperiment(
                *workload,
                core::PolicySpec::twoSizes(core::paperPolicy(scale)),
                tlb, options)
                .cpiTlb;

        workload->reset();
        MultiSizeConfig multi;
        multi.sizeLog2s = {12, 15, 18};
        multi.window = scale.window;
        MultiSizePolicy policy(multi);
        auto tlb_model = makeTlb(tlb);
        // Penalty for >2 sizes: assume the same 1.25x handler factor
        // (the handler's probe set grows, but so does hit coverage).
        const auto result = core::runExperiment(*workload, policy,
                                                *tlb_model, options);
        const double cpi3 = result.cpiTlb;

        const auto &per_level = policy.refsPerLevel();
        const std::uint64_t total = per_level[0] + per_level[1] +
                                    per_level[2];
        const double pct256 =
            total == 0 ? 0.0
                       : 100.0 * static_cast<double>(per_level[2]) /
                             static_cast<double>(total);

        return Cell{info.name, cpi1, cpi2, cpi3, pct256};
    });
    double sum1 = 0.0, sum2 = 0.0, sum3 = 0.0;
    std::vector<std::vector<std::string>> csv_rows;
    for (const Cell &cell : cells) {
        sum1 += cell.cpi1;
        sum2 += cell.cpi2;
        sum3 += cell.cpi3;
        table.addRow({cell.name, bench::cpi(cell.cpi1),
                      bench::cpi(cell.cpi2), bench::cpi(cell.cpi3),
                      formatFixed(cell.pct256, 1)});
        csv_rows.push_back({cell.name, formatFixed(cell.cpi1, 6),
                            formatFixed(cell.cpi2, 6),
                            formatFixed(cell.cpi3, 6),
                            formatFixed(cell.pct256, 4)});
    }
    bench::record("ext_many_sizes",
                  {"program", "cpi_4k", "cpi_two_size",
                   "cpi_three_size", "pct_refs_256k"},
                  csv_rows);
    table.addRule();
    table.addRow({"mean", bench::cpi(sum1 / 12), bench::cpi(sum2 / 12),
                  bench::cpi(sum3 / 12), ""});
    table.print(std::cout);
    std::cout << "\nthe third size pays off exactly where footprints "
                 "exceed 16 x 32KB of reach (verilog, nasa7); sparse "
                 "programs never cascade to 256KB pages\n";
    return 0;
}
