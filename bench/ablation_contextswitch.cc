/**
 * @file
 * Ablation: what does a context switch cost the TLB, and how much of
 * it do ASIDs buy back?
 *
 * Sweeps quantum length x switch mode x process count over one
 * multiprogrammed mix (core::runMultiprogExperiment) with a shared
 * physical memory under --frag-pressure, holding the two-page-size
 * policy fixed.  The three switch modes bracket real hardware:
 *
 *   flush        untagged TLB, invalidateAll() every switch
 *   tagged+limit bounded hardware ASID file (recycling flushes)
 *   tagged       unbounded ASIDs (pure capacity competition)
 *
 * Expected ordering at every quantum: CPI(flush) >= CPI(tagged+limit)
 * >= CPI(tagged) — flush repays the whole working set after every
 * switch, the bounded tag file repays only recycled contexts, tagged
 * pays nothing but capacity.  Shootdown broadcasts (cpi_os) are
 * charged identically in all modes, so the CPI_TLB column isolates
 * the switch-handling difference.
 *
 * Flags: --procs / --quantum / --shootdown-cycles / --hw-asids plus
 * the shared set (see bench_common.h); physical memory defaults to
 * 64 MiB — add --frag-pressure 0.5 for the busy-machine variant.
 */

#include "bench/bench_common.h"

#include "core/multiprog.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(
        argc, argv, "Ablation",
        "context-switch handling: flush vs tagged vs tagged+limit");

    const char *mix[] = {"espresso", "xnews", "matrix300", "li"};

    std::string value;
    std::vector<std::size_t> proc_counts = {2, 4};
    if (bench::flagValue(argc, argv, "--procs", value)) {
        const std::size_t procs = static_cast<std::size_t>(
            bench::detail::parseCount("--procs", value));
        if (procs < 1 || procs > 4)
            tps_fatal("--procs expects 1..4, got ", procs);
        proc_counts = {procs};
    }
    std::vector<std::uint64_t> quanta = {2'000, 10'000, 50'000};
    if (bench::flagValue(argc, argv, "--quantum", value))
        quanta = {bench::detail::parseCount("--quantum", value)};
    double shootdown_cycles = 40.0;
    if (bench::flagValue(argc, argv, "--shootdown-cycles", value))
        shootdown_cycles = static_cast<double>(
            bench::detail::parseCount("--shootdown-cycles", value));
    std::uint16_t hw_asids = 2;
    if (bench::flagValue(argc, argv, "--hw-asids", value))
        hw_asids = static_cast<std::uint16_t>(
            bench::detail::parseCount("--hw-asids", value));
    // Shared physical memory on by default: promotions compete for
    // contiguity across processes, which is the regime where the
    // shootdown term matters.
    const phys::PhysConfig phys =
        bench::physFromArgs(argc, argv, /*default_mib=*/64);

    const os::SwitchMode modes[] = {os::SwitchMode::Flush,
                                    os::SwitchMode::TaggedLimit,
                                    os::SwitchMode::Tagged};

    struct Cell
    {
        std::size_t procs;
        std::uint64_t quantum;
        os::SwitchMode mode;
    };
    std::vector<Cell> cells;
    for (std::size_t procs : proc_counts)
        for (std::uint64_t quantum : quanta)
            for (os::SwitchMode mode : modes)
                cells.push_back({procs, quantum, mode});

    const unsigned threads = bench::resolvedThreads(scale);
    obs::ProgressReporter progress(cells.size(), "cells");
    auto results = util::parallelMapIndex(
        threads, cells.size(), [&](std::size_t c) {
            const Cell &cell = cells[c];
            std::vector<core::ProcessSpec> specs;
            for (std::size_t p = 0; p < cell.procs; ++p) {
                core::ProcessSpec spec;
                spec.workload = mix[p];
                spec.policy = core::PolicySpec::twoSizes(
                    core::paperPolicy(scale));
                specs.push_back(spec);
            }
            TlbConfig tlb;
            tlb.organization = TlbOrganization::FullyAssociative;
            tlb.entries = 64;

            core::MultiprogOptions options;
            options.run.maxRefs = scale.refs;
            options.run.warmupRefs = scale.warmupRefs;
            options.run.phys = phys;
            options.sched.quantumRefs = cell.quantum;
            options.sched.switchMode = cell.mode;
            options.sched.hwAsids = hw_asids;
            options.shootdownCycles = shootdown_cycles;
            options.label = "ctxswitch-p" +
                            std::to_string(cell.procs) + "-q" +
                            std::to_string(cell.quantum) + "-" +
                            os::switchModeName(cell.mode);
            auto result =
                core::runMultiprogExperiment(specs, tlb, options);
            progress.tick(scale.refs);
            return result;
        });
    progress.finish();

    stats::TextTable table({"Procs", "Quantum", "Mode", "CPI_TLB",
                            "CPI_OS", "switches", "recycles",
                            "shootdowns"});
    std::vector<std::vector<std::string>> csv_rows;
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const Cell &cell = cells[c];
        const core::MultiprogResult &r = results[c];
        table.addRow({std::to_string(cell.procs),
                      withCommas(cell.quantum),
                      os::switchModeName(cell.mode),
                      bench::cpi(r.cpiTlb),
                      formatFixed(r.cpiOs, 4),
                      withCommas(r.os.contextSwitches),
                      withCommas(r.os.asidRecycles),
                      withCommas(r.os.shootdowns)});
        std::string key = "p" + std::to_string(cell.procs) + "_q" +
                          std::to_string(cell.quantum) + "_" +
                          os::switchModeName(cell.mode);
        // '+' is not slug-friendly; keep registry/CSV keys plain.
        for (char &ch : key)
            if (ch == '+')
                ch = '_';
        csv_rows.push_back({key, formatFixed(r.cpiTlb, 6),
                            formatFixed(r.cpiOs, 6),
                            std::to_string(r.os.contextSwitches),
                            std::to_string(r.os.asidRecycles),
                            std::to_string(r.os.shootdowns)});
        r.exportTo(bench::registry(),
                   "os.ablation_contextswitch." + key);
    }
    bench::record("ablation_contextswitch",
                  {"config", "cpi_tlb", "cpi_os", "ctx_switches",
                   "asid_recycles", "shootdowns"},
                  csv_rows);
    table.print(std::cout);
    std::cout << "\nflush repays the whole resident set per switch; "
                 "a bounded tag file repays only recycled contexts; "
                 "unbounded tags pay capacity competition only.  "
                 "cpi_os (shootdown broadcasts x sharers) is mode-"
                 "independent by construction.\n";
    return 0;
}
