/**
 * @file
 * Ablation: associativity (paper Sections 2.2c and 5.2).  Two claims:
 * (a) raising associativity absorbs the large-page-index collisions
 * (the eight small pages of a chunk competing for one set), and
 * (b) the tomcatv large-page anomaly is a 2-way index artifact that
 * disappears at higher associativities ("We do not see any such
 * anomalies for higher associativities").
 */

#include "bench/bench_common.h"

#include "workloads/registry.h"

int
main()
{
    using namespace tps;
    const auto scale = bench::banner(
        "Ablation (Sec 2.2c/5.2)", "associativity sweep, 32 entries");

    const std::size_t way_options[] = {1, 2, 4, 8, 16};

    auto run = [&](const std::string &workload_name,
                   const core::PolicySpec &policy, IndexScheme scheme,
                   std::size_t ways) {
        auto workload =
            workloads::findWorkload(workload_name).instantiate();
        TlbConfig tlb;
        tlb.organization = TlbOrganization::SetAssociative;
        tlb.entries = 32;
        tlb.ways = ways;
        tlb.scheme = scheme;
        core::RunOptions options;
        options.maxRefs = scale.refs;
        options.warmupRefs = scale.warmupRefs;
        return core::runExperiment(*workload, policy, tlb, options)
            .cpiTlb;
    };

    std::cout << "-- (a) two-size scheme, large-page index: "
                 "associativity absorbs chunk-block collisions --\n";
    {
        stats::TextTable table({"Program", "1-way", "2-way", "4-way",
                                "8-way", "16-way"});
        for (const char *name : {"li", "worm", "xnews"}) {
            std::vector<std::string> row = {name};
            for (std::size_t ways : way_options) {
                row.push_back(bench::cpi(run(
                    name,
                    core::PolicySpec::twoSizes(
                        core::paperPolicy(scale)),
                    IndexScheme::LargePage, ways)));
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
    }

    std::cout << "\n-- (b) tomcatv with 32KB single pages: the 2-way "
                 "thrash anomaly vanishes with associativity --\n";
    {
        stats::TextTable table({"Pages", "1-way", "2-way", "4-way",
                                "8-way", "16-way"});
        for (unsigned size_log2 : {kLog2_4K, kLog2_32K}) {
            std::vector<std::string> row = {
                formatBytes(std::uint64_t{1} << size_log2)};
            for (std::size_t ways : way_options) {
                TlbConfig tlb;
                tlb.organization = TlbOrganization::SetAssociative;
                tlb.entries = 32;
                tlb.ways = ways;
                tlb.scheme = IndexScheme::Exact;
                tlb.smallLog2 = size_log2;
                tlb.largeLog2 = size_log2 + 3;
                auto workload =
                    workloads::findWorkload("tomcatv").instantiate();
                core::RunOptions options;
                options.maxRefs = scale.refs;
                options.warmupRefs = scale.warmupRefs;
                row.push_back(bench::cpi(
                    core::runExperiment(
                        *workload,
                        core::PolicySpec::single(size_log2), tlb,
                        options)
                        .cpiTlb));
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
    }
    return 0;
}
