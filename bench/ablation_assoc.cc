/**
 * @file
 * Ablation: associativity (paper Sections 2.2c and 5.2).  Two claims:
 * (a) raising associativity absorbs the large-page-index collisions
 * (the eight small pages of a chunk competing for one set), and
 * (b) the tomcatv large-page anomaly is a 2-way index artifact that
 * disappears at higher associativities ("We do not see any such
 * anomalies for higher associativities").
 */

#include "bench/bench_common.h"

#include "core/sweep.h"
#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(
        argc, argv, "Ablation (Sec 2.2c/5.2)",
        "associativity sweep, 32 entries");

    const std::size_t way_options[] = {1, 2, 4, 8, 16};

    std::cout << "-- (a) two-size scheme, large-page index: "
                 "associativity absorbs chunk-block collisions --\n";
    {
        // 3 workloads x 5 associativities as one parallel sweep grid.
        core::RunOptions options;
        options.maxRefs = scale.refs;
        options.warmupRefs = scale.warmupRefs;
        options.walk = scale.walk;
        core::SweepRunner sweep;
        sweep.workloads({"li", "worm", "xnews"})
            .options(options)
            .threads(scale.threads);
        for (std::size_t ways : way_options) {
            TlbConfig tlb;
            tlb.organization = TlbOrganization::SetAssociative;
            tlb.entries = 32;
            tlb.ways = ways;
            tlb.scheme = IndexScheme::LargePage;
            sweep.configuration(
                tlb,
                core::PolicySpec::twoSizes(core::paperPolicy(scale)),
                std::to_string(ways) + "-way");
        }
        const auto cells = sweep.run();
        core::SweepRunner::exportStats(cells, bench::registry(),
                                       "sweep.assoc_large_index");

        stats::TextTable table({"Program", "1-way", "2-way", "4-way",
                                "8-way", "16-way"});
        std::vector<std::vector<std::string>> csv_rows;
        const std::size_t nways = std::size(way_options);
        for (std::size_t w = 0; w < cells.size(); w += nways) {
            std::vector<std::string> row = {cells[w].workload};
            std::vector<std::string> csv_row = {cells[w].workload};
            for (std::size_t c = 0; c < nways; ++c) {
                row.push_back(bench::cpi(cells[w + c].result.cpiTlb));
                csv_row.push_back(
                    formatFixed(cells[w + c].result.cpiTlb, 6));
            }
            table.addRow(std::move(row));
            csv_rows.push_back(std::move(csv_row));
        }
        bench::record("ablation_assoc_large_index",
                      {"program", "cpi_1way", "cpi_2way", "cpi_4way",
                       "cpi_8way", "cpi_16way"},
                      csv_rows);
        table.print(std::cout);
    }

    std::cout << "\n-- (b) tomcatv with 32KB single pages: the 2-way "
                 "thrash anomaly vanishes with associativity --\n";
    {
        stats::TextTable table({"Pages", "1-way", "2-way", "4-way",
                                "8-way", "16-way"});
        std::vector<std::vector<std::string>> csv_rows;
        for (unsigned size_log2 : {kLog2_4K, kLog2_32K}) {
            std::vector<std::string> row = {
                formatBytes(std::uint64_t{1} << size_log2)};
            for (std::size_t ways : way_options) {
                TlbConfig tlb;
                tlb.organization = TlbOrganization::SetAssociative;
                tlb.entries = 32;
                tlb.ways = ways;
                tlb.scheme = IndexScheme::Exact;
                tlb.smallLog2 = size_log2;
                tlb.largeLog2 = size_log2 + 3;
                auto workload =
                    workloads::findWorkload("tomcatv").instantiate();
                core::RunOptions options;
                options.maxRefs = scale.refs;
                options.warmupRefs = scale.warmupRefs;
                options.walk = scale.walk;
                row.push_back(bench::cpi(
                    core::runExperiment(
                        *workload,
                        core::PolicySpec::single(size_log2), tlb,
                        options)
                        .cpiTlb));
            }
            csv_rows.push_back(row);
            csv_rows.back().front() =
                "size_" + std::to_string(
                              (std::uint64_t{1} << size_log2) / 1024) +
                "k";
            table.addRow(std::move(row));
        }
        bench::record("ablation_assoc_tomcatv",
                      {"pages", "cpi_1way", "cpi_2way", "cpi_4way",
                       "cpi_8way", "cpi_16way"},
                      csv_rows);
        table.print(std::cout);
    }
    return 0;
}
