/**
 * @file
 * Shared boilerplate for the bench executables: every bench prints a
 * banner with its experiment id, the scale in use, and a paper-style
 * ASCII table on stdout.
 */

#ifndef TPS_BENCH_BENCH_COMMON_H_
#define TPS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/figures.h"
#include "stats/csv.h"
#include "stats/table.h"
#include "util/format.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tps::bench
{

/**
 * Extract a `--threads N` (or `--threads=N`) option from argv.
 * Returns @p fallback when absent; 0 means auto (TPS_THREADS, else
 * hardware concurrency).  Unknown arguments are left for the caller.
 */
inline unsigned
threadsFromArgs(int argc, char **argv, unsigned fallback = 0)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--threads" && i + 1 < argc)
            value = argv[i + 1];
        else if (arg.rfind("--threads=", 0) == 0)
            value = arg.substr(10);
        else
            continue;
        char *end = nullptr;
        const unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0')
            tps_fatal("--threads expects a number, got '", value, "'");
        return static_cast<unsigned>(parsed);
    }
    return fallback;
}

/** Worker count a scale resolves to (0 = auto). */
inline unsigned
resolvedThreads(const core::StudyScale &scale)
{
    return scale.threads != 0 ? scale.threads
                              : util::ThreadPool::defaultThreads();
}

/**
 * Command-line-aware banner: parses `--threads N` into the returned
 * scale so every bench can be pinned (1 = serial) or widened without
 * touching TPS_THREADS.
 */
inline core::StudyScale
banner(int argc, char **argv, const char *experiment, const char *what)
{
    core::StudyScale scale = core::defaultScale();
    scale.threads = threadsFromArgs(argc, argv, scale.threads);
    std::cout << "== " << experiment << ": " << what << " ==\n"
              << "   refs/workload = " << withCommas(scale.refs)
              << ", window T = " << withCommas(scale.window)
              << " refs (override: TPS_REFS / TPS_WINDOW), threads = "
              << resolvedThreads(scale)
              << " (--threads N / TPS_THREADS)\n"
              << "   paper scale: refs 1e8..4e9, T = 1e7; shapes, not "
                 "absolute values, are the reproduction target\n\n";
    return scale;
}

/** Argument-free banner for callers with no command line. */
inline core::StudyScale
banner(const char *experiment, const char *what)
{
    return banner(0, nullptr, experiment, what);
}

/** Format a CPI value the way the paper's tables do (3 decimals). */
inline std::string
cpi(double v)
{
    return formatFixed(v, 3);
}

/** Format a normalized working-set ratio (2 decimals). */
inline std::string
ratio(double v)
{
    return formatFixed(v, 2);
}

/**
 * When TPS_CSV_DIR is set, also dump the table as
 * "$TPS_CSV_DIR/<experiment>.csv" for replotting (the paper's figures
 * are plots; the printed tables are their data).
 */
inline void
maybeWriteCsv(const std::string &experiment,
              const std::vector<std::string> &headers,
              const std::vector<std::vector<std::string>> &rows)
{
    const char *dir = std::getenv("TPS_CSV_DIR");
    if (dir == nullptr || dir[0] == '\0')
        return;
    const std::string path = std::string(dir) + "/" + experiment +
                             ".csv";
    std::ofstream out(path);
    if (!out) {
        std::cerr << "warn: cannot write " << path << "\n";
        return;
    }
    stats::CsvWriter csv(out, headers);
    for (const auto &row : rows)
        csv.writeRow(row);
    std::cerr << "info: wrote " << path << "\n";
}

} // namespace tps::bench

#endif // TPS_BENCH_BENCH_COMMON_H_
