/**
 * @file
 * Shared boilerplate for the bench executables: every bench prints a
 * banner with its experiment id, the scale in use, and a paper-style
 * ASCII table on stdout.
 */

#ifndef TPS_BENCH_BENCH_COMMON_H_
#define TPS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/figures.h"
#include "stats/csv.h"
#include "stats/table.h"
#include "util/format.h"

namespace tps::bench
{

/** Print the standard banner and return the active scale. */
inline core::StudyScale
banner(const char *experiment, const char *what)
{
    const core::StudyScale scale = core::defaultScale();
    std::cout << "== " << experiment << ": " << what << " ==\n"
              << "   refs/workload = " << withCommas(scale.refs)
              << ", window T = " << withCommas(scale.window)
              << " refs (override: TPS_REFS / TPS_WINDOW)\n"
              << "   paper scale: refs 1e8..4e9, T = 1e7; shapes, not "
                 "absolute values, are the reproduction target\n\n";
    return scale;
}

/** Format a CPI value the way the paper's tables do (3 decimals). */
inline std::string
cpi(double v)
{
    return formatFixed(v, 3);
}

/** Format a normalized working-set ratio (2 decimals). */
inline std::string
ratio(double v)
{
    return formatFixed(v, 2);
}

/**
 * When TPS_CSV_DIR is set, also dump the table as
 * "$TPS_CSV_DIR/<experiment>.csv" for replotting (the paper's figures
 * are plots; the printed tables are their data).
 */
inline void
maybeWriteCsv(const std::string &experiment,
              const std::vector<std::string> &headers,
              const std::vector<std::vector<std::string>> &rows)
{
    const char *dir = std::getenv("TPS_CSV_DIR");
    if (dir == nullptr || dir[0] == '\0')
        return;
    const std::string path = std::string(dir) + "/" + experiment +
                             ".csv";
    std::ofstream out(path);
    if (!out) {
        std::cerr << "warn: cannot write " << path << "\n";
        return;
    }
    stats::CsvWriter csv(out, headers);
    for (const auto &row : rows)
        csv.writeRow(row);
    std::cerr << "info: wrote " << path << "\n";
}

} // namespace tps::bench

#endif // TPS_BENCH_BENCH_COMMON_H_
