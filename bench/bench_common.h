/**
 * @file
 * Shared boilerplate for the bench executables: every bench prints a
 * banner with its experiment id, the scale in use, and a paper-style
 * ASCII table on stdout.
 */

#ifndef TPS_BENCH_BENCH_COMMON_H_
#define TPS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/figures.h"
#include "obs/event_log.h"
#include "obs/manifest.h"
#include "obs/progress.h"
#include "obs/signal_flush.h"
#include "obs/stat_registry.h"
#include "obs/timeseries.h"
#include "obs/trace_profiler.h"
#include "phys/memory_model.h"
#include "stats/csv.h"
#include "stats/table.h"
#include "util/format.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tps::bench
{

/**
 * Extract a `--threads N` (or `--threads=N`) option from argv.
 * Returns @p fallback when absent; 0 means auto (TPS_THREADS, else
 * hardware concurrency).  Unknown arguments are left for the caller.
 */
inline unsigned
threadsFromArgs(int argc, char **argv, unsigned fallback = 0)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--threads" && i + 1 < argc)
            value = argv[i + 1];
        else if (arg.rfind("--threads=", 0) == 0)
            value = arg.substr(10);
        else
            continue;
        char *end = nullptr;
        const unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0')
            tps_fatal("--threads expects a number, got '", value, "'");
        return static_cast<unsigned>(parsed);
    }
    return fallback;
}

/** Worker count a scale resolves to (0 = auto). */
inline unsigned
resolvedThreads(const core::StudyScale &scale)
{
    return scale.threads != 0 ? scale.threads
                              : util::ThreadPool::defaultThreads();
}

/**
 * Extract `--<flag> VALUE` or `--<flag>=VALUE` from argv.
 * @return true and set @p value when present.
 */
inline bool
flagValue(int argc, char **argv, const std::string &flag,
          std::string &value)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == flag && i + 1 < argc) {
            value = argv[i + 1];
            return true;
        }
        if (arg.rfind(flag + "=", 0) == 0) {
            value = arg.substr(flag.size() + 1);
            return true;
        }
    }
    return false;
}

/** True when the bare flag appears in argv. */
inline bool
hasFlag(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i < argc; ++i)
        if (flag == argv[i])
            return true;
    return false;
}

namespace detail
{

/** Per-process observability state shared by every bench helper. */
struct ObsState
{
    obs::StatRegistry registry;
    obs::RunManifest manifest;
    std::string statsOut;
    std::string traceOut;
    std::string timeseriesOut;
    std::string eventsOut;
};

/** Parse a non-negative integer flag value or die with context. */
inline std::uint64_t
parseCount(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        tps_fatal(flag, " expects a number, got '", value, "'");
    return parsed;
}

inline ObsState &
obsState()
{
    static ObsState state;
    return state;
}

/** atexit hook: write --stats-out / --trace-out files. */
inline void
flushObs()
{
    ObsState &state = obsState();
    if (!state.statsOut.empty()) {
        std::ofstream out(state.statsOut);
        if (!out) {
            std::fprintf(stderr, "warn: cannot write %s\n",
                         state.statsOut.c_str());
        } else {
            state.registry.writeJson(out, &state.manifest);
            std::fprintf(stderr, "info: wrote %s\n",
                         state.statsOut.c_str());
        }
    }
    if (!state.traceOut.empty()) {
        const obs::TraceProfiler *profiler = obs::TraceProfiler::global();
        if (profiler != nullptr) {
            std::ofstream out(state.traceOut);
            if (!out) {
                std::fprintf(stderr, "warn: cannot write %s\n",
                             state.traceOut.c_str());
            } else {
                profiler->writeJson(out);
                std::fprintf(stderr, "info: wrote %s\n",
                             state.traceOut.c_str());
            }
        }
    }
    if (!state.timeseriesOut.empty()) {
        const obs::TimeSeriesSink *sink = obs::TimeSeriesSink::global();
        if (sink != nullptr) {
            std::ofstream out(state.timeseriesOut);
            if (!out) {
                std::fprintf(stderr, "warn: cannot write %s\n",
                             state.timeseriesOut.c_str());
            } else {
                sink->writeJson(out, &state.manifest);
                std::fprintf(stderr, "info: wrote %s (%zu cells)\n",
                             state.timeseriesOut.c_str(),
                             sink->cellCount());
            }
        }
    }
    if (!state.eventsOut.empty()) {
        const obs::EventLogSink *sink = obs::EventLogSink::global();
        if (sink != nullptr) {
            std::ofstream out(state.eventsOut);
            if (!out) {
                std::fprintf(stderr, "warn: cannot write %s\n",
                             state.eventsOut.c_str());
            } else {
                sink->writeJson(out, &state.manifest);
                std::fprintf(stderr, "info: wrote %s (%zu cells)\n",
                             state.eventsOut.c_str(),
                             sink->cellCount());
            }
        }
    }
}

} // namespace detail

/**
 * Parse the physical-memory-model flags into a phys::PhysConfig for
 * RunOptions::phys (see DESIGN.md §9):
 *
 *   --phys-mem MIB       modeled physical memory in MiB
 *                        (@p default_mib when absent; 0 = model off)
 *   --frag-pressure P    background frame occupancy in [0,1)
 *   --reservation on|off reservation-based superpage allocation vs
 *                        the paper's copy-based promotion
 */
inline phys::PhysConfig
physFromArgs(int argc, char **argv, std::uint64_t default_mib = 0)
{
    phys::PhysConfig config;
    std::uint64_t mib = default_mib;
    std::string value;
    if (flagValue(argc, argv, "--phys-mem", value))
        mib = detail::parseCount("--phys-mem", value);
    config.memBytes = mib << 20;
    if (flagValue(argc, argv, "--frag-pressure", value)) {
        char *end = nullptr;
        config.fragPressure = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0' ||
            config.fragPressure < 0.0 || config.fragPressure >= 1.0)
            tps_fatal("--frag-pressure expects a number in [0,1), "
                      "got '", value, "'");
    }
    if (flagValue(argc, argv, "--reservation", value)) {
        if (value == "on")
            config.reservation = true;
        else if (value == "off")
            config.reservation = false;
        else
            tps_fatal("--reservation expects on|off, got '", value,
                      "'");
    }
    return config;
}

/**
 * The process-wide stats registry.  Everything a bench records here
 * (plus the run manifest) lands in the `--stats-out` JSON, written at
 * exit.
 */
inline obs::StatRegistry &
registry()
{
    return detail::obsState().registry;
}

/** The manifest attached to this run's stats dump (set by banner()). */
inline obs::RunManifest &
manifest()
{
    return detail::obsState().manifest;
}

/** Record one named statistic (see obs::StatRegistry naming rules). */
inline void
stat(const std::string &name, std::uint64_t value)
{
    registry().addCounter(name, value);
}

inline void
stat(const std::string &name, double value)
{
    registry().addValue(name, value);
}

inline void
stat(const std::string &name, const std::string &value)
{
    registry().addText(name, value);
}

/**
 * Remove the observability/thread options banner() consumes from an
 * argv that is about to be handed to a stricter parser (micro_perf
 * gives its argv to google-benchmark, which exits on anything it
 * does not recognize).
 */
inline void
stripObsArgs(int &argc, char **argv)
{
    const std::vector<std::string> value_flags = {
        "--threads",        "--stats-out",           "--trace-out",
        "--timeseries-out", "--timeseries-interval", "--miss-sample",
        "--phys-mem",       "--frag-pressure",       "--reservation",
        "--chunk-refs",     "--events-out",          "--events-sample",
        "--pwc-entries",    "--victim-entries"};
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--progress" || arg == "--walk-model")
            continue;
        bool strip = false;
        for (const std::string &flag : value_flags) {
            if (arg == flag) {
                ++i; // also skip the value
                strip = true;
                break;
            }
            if (arg.rfind(flag + "=", 0) == 0) {
                strip = true;
                break;
            }
        }
        if (!strip)
            argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
}

/**
 * Command-line-aware banner: parses `--threads N` into the returned
 * scale so every bench can be pinned (1 = serial) or widened without
 * touching TPS_THREADS, and wires up the observability options every
 * bench shares:
 *
 *   --stats-out FILE   dump the stats registry (with run manifest)
 *                      as tps-stats-v1 JSON at exit
 *   --trace-out FILE   enable the global span profiler and write
 *                      Chrome trace_event JSON at exit (load in
 *                      chrome://tracing or ui.perfetto.dev)
 *   --progress         rate-limited progress lines on stderr
 *                      (TPS_PROGRESS=1 equivalent)
 *   --timeseries-out FILE      enable interval telemetry and write a
 *                              tps-timeseries-v1 document at exit
 *                              (render with tools/tps_report)
 *   --timeseries-interval N    measured refs per interval
 *                              (default 100000)
 *   --miss-sample K            reservoir-sample up to K miss events
 *                              per cell into the time series
 *                              (default 0 = off)
 *   --events-out FILE          enable structured event telemetry and
 *                              write a tps-events-v1 document at exit
 *                              (TPS_EVENTS_OUT equivalent; drill in
 *                              with tools/tps_inspect).  Also turns on
 *                              the lifecycle ledger, so the stats dump
 *                              gains lifecycle.* / reach.* keys.
 *   --events-sample N          keep every Nth event per stream
 *                              (default 1 = all; sampling is counted,
 *                              not random, so logs stay deterministic)
 *   --chunk-refs N             references per chunk of the batched
 *                              experiment engine (default 4096;
 *                              TPS_CHUNK_REFS equivalent; results
 *                              are identical at any value)
 *   --walk-model               charge TLB misses a structural radix
 *                              page walk instead of only the flat
 *                              constant (TPS_WALK_MODEL equivalent;
 *                              adds walk.* keys and cpi_walk to every
 *                              cell — see walk/walk.h)
 *   --pwc-entries N            page-walk-cache entries for the walk
 *                              model (default 16; 0 = no PWC)
 *   --victim-entries N         software victim-TLB array size used by
 *                              benches that build a
 *                              TlbOrganization::Victim config
 *                              (default 512)
 */
inline core::StudyScale
banner(int argc, char **argv, const char *experiment, const char *what)
{
    core::StudyScale scale = core::defaultScale();
    scale.threads = threadsFromArgs(argc, argv, scale.threads);

    detail::ObsState &state = detail::obsState();
    std::string value;
    if (flagValue(argc, argv, "--chunk-refs", value)) {
        scale.chunkRefs = static_cast<std::size_t>(
            detail::parseCount("--chunk-refs", value));
        if (scale.chunkRefs == 0)
            tps_fatal("--chunk-refs must be > 0");
    }
    if (hasFlag(argc, argv, "--walk-model"))
        scale.walk.enabled = true;
    if (flagValue(argc, argv, "--pwc-entries", value))
        scale.walk.pwcEntries = static_cast<std::size_t>(
            detail::parseCount("--pwc-entries", value));
    if (flagValue(argc, argv, "--victim-entries", value)) {
        scale.walk.victimEntries = static_cast<std::size_t>(
            detail::parseCount("--victim-entries", value));
        if (scale.walk.victimEntries == 0)
            tps_fatal("--victim-entries must be > 0");
    }
    if (flagValue(argc, argv, "--stats-out", value))
        state.statsOut = value;
    if (flagValue(argc, argv, "--trace-out", value)) {
        state.traceOut = value;
        obs::TraceProfiler::enableGlobal();
    }
    {
        obs::TimeSeriesConfig ts;
        ts.intervalRefs = 100'000;
        bool requested = false;
        if (flagValue(argc, argv, "--timeseries-out", value)) {
            state.timeseriesOut = value;
            requested = true;
        }
        if (flagValue(argc, argv, "--timeseries-interval", value)) {
            ts.intervalRefs =
                detail::parseCount("--timeseries-interval", value);
            if (ts.intervalRefs == 0)
                tps_fatal("--timeseries-interval must be > 0");
            requested = true;
        }
        if (flagValue(argc, argv, "--miss-sample", value)) {
            ts.missSampleCapacity = static_cast<std::size_t>(
                detail::parseCount("--miss-sample", value));
            requested = true;
        }
        if (requested) {
            scale.timeseries = ts;
            obs::TimeSeriesSink::enableGlobal(ts);
        }
    }
    {
        obs::EventLogConfig events;
        bool requested = false;
        if (flagValue(argc, argv, "--events-out", value)) {
            state.eventsOut = value;
            requested = true;
        } else {
            const char *env = std::getenv("TPS_EVENTS_OUT");
            if (env != nullptr && env[0] != '\0') {
                state.eventsOut = env;
                requested = true;
            }
        }
        if (flagValue(argc, argv, "--events-sample", value)) {
            events.sampleEvery =
                detail::parseCount("--events-sample", value);
            if (events.sampleEvery == 0)
                tps_fatal("--events-sample must be > 0");
            requested = true;
        }
        if (requested) {
            if (events.sampleEvery == 0)
                events.sampleEvery = 1;
            obs::EventLogSink::enableGlobal(events);
        }
    }
    const char *progress_env = std::getenv("TPS_PROGRESS");
    if (hasFlag(argc, argv, "--progress") ||
        (progress_env != nullptr && progress_env[0] != '\0' &&
         std::string(progress_env) != "0")) {
        obs::setProgressEnabled(true);
    }

    state.manifest = obs::RunManifest::capture(experiment, argc, argv);
    state.manifest.refs = scale.refs;
    state.manifest.window = scale.window;
    state.manifest.warmupRefs = scale.warmupRefs;
    state.manifest.threads = resolvedThreads(scale);
    if (scale.timeseries.enabled()) {
        state.manifest.extra["timeseries_interval"] =
            std::to_string(scale.timeseries.intervalRefs);
        state.manifest.extra["miss_sample"] =
            std::to_string(scale.timeseries.missSampleCapacity);
    }
    if (const obs::EventLogSink *events = obs::EventLogSink::global();
        events != nullptr) {
        state.manifest.extra["events_sample"] =
            std::to_string(events->config().sampleEvery);
    }
    const char *cache_env = std::getenv("TPS_TRACE_CACHE");
    if (cache_env != nullptr && cache_env[0] != '\0') {
        state.manifest.traceCacheMode =
            std::string(cache_env) == "0"
                ? "off"
                : (std::string(cache_env) == "1" ? "on" : "auto");
    }

    // One registration is enough; flushing with nothing requested is
    // a no-op.  SIGINT/SIGTERM also flush (then exit 128+sig): an
    // interrupted overnight bench keeps its partial stats dump rather
    // than losing everything to a skipped atexit hook.
    static const bool registered = [] {
        std::atexit(&detail::flushObs);
        obs::installSignalFlush([](int) { detail::flushObs(); });
        return true;
    }();
    (void)registered;

    std::cout << "== " << experiment << ": " << what << " ==\n"
              << "   refs/workload = " << withCommas(scale.refs)
              << ", window T = " << withCommas(scale.window)
              << " refs (override: TPS_REFS / TPS_WINDOW), threads = "
              << resolvedThreads(scale)
              << " (--threads N / TPS_THREADS)\n"
              << "   paper scale: refs 1e8..4e9, T = 1e7; shapes, not "
                 "absolute values, are the reproduction target\n\n";
    return scale;
}

/** Argument-free banner for callers with no command line. */
inline core::StudyScale
banner(const char *experiment, const char *what)
{
    return banner(0, nullptr, experiment, what);
}

/** Format a CPI value the way the paper's tables do (3 decimals). */
inline std::string
cpi(double v)
{
    return formatFixed(v, 3);
}

/** Format a normalized working-set ratio (2 decimals). */
inline std::string
ratio(double v)
{
    return formatFixed(v, 2);
}

/**
 * When TPS_CSV_DIR is set, also dump the table as
 * "$TPS_CSV_DIR/<experiment>.csv" for replotting (the paper's figures
 * are plots; the printed tables are their data).
 */
inline void
maybeWriteCsv(const std::string &experiment,
              const std::vector<std::string> &headers,
              const std::vector<std::vector<std::string>> &rows)
{
    const char *dir = std::getenv("TPS_CSV_DIR");
    if (dir == nullptr || dir[0] == '\0')
        return;
    const std::string path = std::string(dir) + "/" + experiment +
                             ".csv";
    std::ofstream out(path);
    if (!out) {
        std::cerr << "warn: cannot write " << path << "\n";
        return;
    }
    stats::CsvWriter csv(out, headers);
    for (const auto &row : rows)
        csv.writeRow(row);
    std::cerr << "info: wrote " << path << "\n";
}

/**
 * Record one result table under both sinks at once: the TPS_CSV_DIR
 * dump (as before) and the stats registry, as
 * "bench.<table>.<row[0]>.<header>" with numeric-looking cells parsed
 * into counters/values and everything else kept as text.  Every bench
 * routes its tables through here so `--stats-out` captures the same
 * numbers the printed table shows.
 */
inline void
record(const std::string &table,
       const std::vector<std::string> &headers,
       const std::vector<std::vector<std::string>> &rows)
{
    maybeWriteCsv(table, headers, rows);

    obs::StatRegistry &reg = registry();
    const std::string base = "bench." + obs::slugify(table);
    for (const auto &row : rows) {
        if (row.empty())
            continue;
        const std::string row_base =
            base + "." + obs::slugify(row.front());
        for (std::size_t c = 1; c < row.size() && c < headers.size();
             ++c) {
            const std::string name =
                row_base + "." + obs::slugify(headers[c]);
            if (reg.has(name)) {
                tps_warn("bench stat '", name,
                         "' recorded twice; keeping the first");
                continue;
            }
            const std::string &cell = row[c];
            char *end = nullptr;
            const long long as_int =
                std::strtoll(cell.c_str(), &end, 10);
            if (end != cell.c_str() && *end == '\0' && as_int >= 0) {
                reg.addCounter(name,
                               static_cast<std::uint64_t>(as_int));
                continue;
            }
            end = nullptr;
            const double as_double = std::strtod(cell.c_str(), &end);
            if (end != cell.c_str() && *end == '\0')
                reg.addValue(name, as_double);
            else
                reg.addText(name, cell);
        }
    }
}

} // namespace tps::bench

#endif // TPS_BENCH_BENCH_COMMON_H_
