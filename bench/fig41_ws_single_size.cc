/**
 * @file
 * Regenerates Figure 4.1: normalized average working-set size versus
 * single page size (4KB..64KB), one series per workload, plus the
 * cross-workload averages the paper quotes (WS_norm(32KB) ~ 1.67,
 * WS_norm(64KB) ~ 2.03).
 */

#include "bench/bench_common.h"

#include "vm/page.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(
        argc, argv, "Figure 4.1", "normalized working set vs single page size");

    const std::vector<unsigned> sizes = {kLog2_8K, kLog2_16K, kLog2_32K,
                                         kLog2_64K};
    const auto rows = core::runWsSingleStudy(scale, sizes);

    stats::TextTable table({"Program", "WS(4KB)", "8KB", "16KB", "32KB",
                            "64KB"});
    std::vector<double> sums(sizes.size(), 0.0);
    std::vector<std::vector<std::string>> csv_rows;
    for (const auto &row : rows) {
        std::vector<std::string> cells = {
            row.name,
            formatBytes(static_cast<std::uint64_t>(row.ws4kBytes))};
        std::vector<std::string> csv_row = {
            row.name, formatFixed(row.ws4kBytes, 0)};
        for (std::size_t s = 0; s < sizes.size(); ++s) {
            cells.push_back(bench::ratio(row.wsNormalized[s]));
            csv_row.push_back(formatFixed(row.wsNormalized[s], 4));
            sums[s] += row.wsNormalized[s];
        }
        table.addRow(std::move(cells));
        csv_rows.push_back(std::move(csv_row));
    }
    bench::record("fig41",
                         {"program", "ws4k_bytes", "norm_8k",
                          "norm_16k", "norm_32k", "norm_64k"},
                         csv_rows);
    table.addRule();
    {
        std::vector<std::string> cells = {"average", ""};
        for (double sum : sums)
            cells.push_back(bench::ratio(
                sum / static_cast<double>(rows.size())));
        table.addRow(std::move(cells));
    }
    table.print(std::cout);

    std::cout << "\npaper reference: averages 32KB ~1.67, 64KB ~2.03; "
                 "WS_norm roughly proportional to page size\n";
    return 0;
}
