/**
 * @file
 * Ablation: the three ways to realize exact indexing (paper Section
 * 2.2, options a/b/c) —
 *   (a) parallel probe (dual-ported / replicated),
 *   (b) sequential reprobe: small index first, large on miss — every
 *       large-page hit and every miss costs an extra probe cycle,
 *   (c) split TLBs, one per page size, with the capacity split as a
 *       design knob.
 * Miss counts are identical for (a) and (b); the difference is probe
 * cost.  (c) changes miss counts through capacity partitioning.
 */

#include "bench/bench_common.h"

#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(argc, argv, "Ablation (Sec 2.2 a/b/c)",
        "exact-index implementation variants, 32 entries 2-way");

    const TwoSizeConfig policy = core::paperPolicy(scale);

    stats::TextTable table({"Program", "parallel", "seq +1cy",
                            "seq +2cy", "split 24+8", "split 16+16"});
    const auto rows = core::forEachSuiteWorkload(
        scale, [&](const auto &info) {
            std::vector<std::string> row = {info.name};

            // (a)+(b): one set-associative run, three cost models.
            {
                auto workload = info.instantiate();
                TlbConfig tlb;
                tlb.organization = TlbOrganization::SetAssociative;
                tlb.entries = 32;
                tlb.ways = 2;
                tlb.scheme = IndexScheme::Exact;
                core::RunOptions options;
                options.maxRefs = scale.refs;
                options.warmupRefs = scale.warmupRefs;
                options.walk = scale.walk;
                const auto result = core::runExperiment(
                    *workload, core::PolicySpec::twoSizes(policy), tlb,
                    options);
                row.push_back(bench::cpi(result.cpiTlb));
                for (double reprobe : {1.0, 2.0}) {
                    core::CpiModel model;
                    model.reprobeCycles = reprobe;
                    row.push_back(bench::cpi(model.cpiTlb(
                        result.tlb, result.policy,
                        result.instructions, true,
                        ProbeStrategy::Sequential)));
                }
            }

            // (c): split TLBs at two capacity partitions.
            for (std::size_t large_entries : {std::size_t{8},
                                              std::size_t{16}}) {
                auto workload = info.instantiate();
                TlbConfig tlb;
                tlb.organization = TlbOrganization::Split;
                tlb.entries = 32;
                tlb.splitLargeEntries = large_entries;
                core::RunOptions options;
                options.maxRefs = scale.refs;
                options.warmupRefs = scale.warmupRefs;
                options.walk = scale.walk;
                row.push_back(bench::cpi(
                    core::runExperiment(
                        *workload, core::PolicySpec::twoSizes(policy),
                        tlb, options)
                        .cpiTlb));
            }
            return row;
        });
    bench::record("ablation_exact_variants",
                  {"program", "cpi_parallel", "cpi_seq_1cy",
                   "cpi_seq_2cy", "cpi_split_24_8", "cpi_split_16_16"},
                  rows);
    for (auto row : rows)
        table.addRow(std::move(row));
    table.print(std::cout);
    std::cout << "\npaper: (a) is fastest but near fully-associative "
                 "cost; (b) taxes large-page hits, eroding the reason "
                 "to use large pages; (c) strands capacity when the "
                 "size mix mismatches the split\n";
    return 0;
}
