/**
 * @file
 * Regenerates Figure 4.2: normalized working set for single page
 * sizes 8/16/32KB versus the dynamic 4KB/32KB two-page-size scheme.
 * The paper's claim: the two-size scheme costs only 1.01x..1.22x
 * (average ~1.1), less than even an 8KB single page size.
 */

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(argc, argv, "Figure 4.2",
        "working set: single sizes vs two-page-size scheme");

    const auto rows =
        core::runWsTwoStudy(scale, core::paperPolicy(scale));

    stats::TextTable table({"Program", "WS(4KB)", "8KB", "16KB", "32KB",
                            "4K/32K", "large-ref%"});
    double sum_two = 0.0, sum_8k = 0.0, sum_32k = 0.0;
    double min_two = 1e9, max_two = 0.0;
    std::vector<std::vector<std::string>> csv_rows;
    for (const auto &row : rows) {
        table.addRow(
            {row.name,
             formatBytes(static_cast<std::uint64_t>(row.ws4kBytes)),
             bench::ratio(row.norm8k), bench::ratio(row.norm16k),
             bench::ratio(row.norm32k), bench::ratio(row.normTwoSize),
             formatFixed(row.largeFraction * 100.0, 1)});
        csv_rows.push_back({row.name, formatFixed(row.ws4kBytes, 0),
                            formatFixed(row.norm8k, 4),
                            formatFixed(row.norm16k, 4),
                            formatFixed(row.norm32k, 4),
                            formatFixed(row.normTwoSize, 4),
                            formatFixed(row.largeFraction, 4)});
        sum_two += row.normTwoSize;
        sum_8k += row.norm8k;
        sum_32k += row.norm32k;
        min_two = std::min(min_two, row.normTwoSize);
        max_two = std::max(max_two, row.normTwoSize);
    }
    bench::record("fig42",
                         {"program", "ws4k_bytes", "norm_8k",
                          "norm_16k", "norm_32k", "norm_two_size",
                          "large_fraction"},
                         csv_rows);
    const double n = static_cast<double>(rows.size());
    table.addRule();
    table.addRow({"average", "", bench::ratio(sum_8k / n), "",
                  bench::ratio(sum_32k / n), bench::ratio(sum_two / n),
                  ""});
    table.print(std::cout);

    std::cout << "\ntwo-size WS_norm range: " << bench::ratio(min_two)
              << " .. " << bench::ratio(max_two)
              << "  (paper: 1.01 .. 1.22, average ~1.1)\n";
    return 0;
}
