/**
 * @file
 * Regenerates Table 3.1: the workload roster with trace length,
 * references per instruction, footprint, and average working-set size
 * at 4KB pages.
 */

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale =
        bench::banner(argc, argv, "Table 3.1", "workload characteristics");

    stats::TextTable table({"Program", "Description", "Refs",
                            "Instrs", "RPI", "Footprint", "WS(4KB,T)"});
    std::vector<std::vector<std::string>> csv_rows;
    for (const auto &row : core::runWorkloadTable(scale)) {
        table.addRow({row.name, row.description, withCommas(row.refs),
                      withCommas(row.instructions),
                      formatFixed(row.rpi, 2),
                      formatBytes(row.footprintBytes),
                      formatBytes(static_cast<std::uint64_t>(
                          row.avgWs4kBytes))});
        csv_rows.push_back({row.name, std::to_string(row.refs),
                            std::to_string(row.instructions),
                            formatFixed(row.rpi, 4),
                            std::to_string(row.footprintBytes),
                            formatFixed(row.avgWs4kBytes, 0)});
    }
    bench::record("table31",
                  {"program", "refs", "instructions", "rpi",
                   "footprint_bytes", "avg_ws4k_bytes"},
                  csv_rows);
    table.print(std::cout);
    return 0;
}
