/**
 * @file
 * Ablation: physical-memory pressure vs superpage allocation policy.
 *
 * The paper promotes by copying blocks into a freshly allocated
 * contiguous region (Section 3.4) and never models where that region
 * comes from.  This bench puts a buddy allocator with a configurable
 * amount of background fragmentation (--frag-pressure) under the
 * promotion path and compares the paper's copy-based promotion
 * (--reservation off) against reservation-based allocation
 * (--reservation on), which sets aside an aligned superpage region at
 * first touch and promotes in place.  Expected shape: under low
 * pressure reservations win (promotions are free); under high
 * pressure reservations cannot be opened, both modes degrade, and the
 * copy path additionally pays copy cycles for every promotion it does
 * manage (visible as CPI+copy > CPI_TLB).
 */

#include "bench/bench_common.h"

#include "workloads/registry.h"

int
main(int argc, char **argv)
{
    using namespace tps;
    const auto scale = bench::banner(
        argc, argv, "Ablation (phys)",
        "fragmentation pressure x superpage allocation policy");

    phys::PhysConfig base = bench::physFromArgs(argc, argv, 64);

    std::vector<double> pressures = {0.0, 0.25, 0.5, 0.75};
    std::string value;
    if (bench::flagValue(argc, argv, "--frag-pressure", value))
        pressures = {base.fragPressure};
    std::vector<bool> modes = {false, true};
    if (bench::flagValue(argc, argv, "--reservation", value))
        modes = {base.reservation};

    TlbConfig tlb;
    tlb.organization = TlbOrganization::FullyAssociative;
    tlb.entries = 16;

    stats::TextTable table({"Pressure", "Resv", "mean CPI_TLB",
                            "mean CPI+copy", "in-place", "copied",
                            "sp-fail", "mean frag-idx"});
    struct Cell
    {
        double cpiTlb = 0.0;
        double cpiPhys = 0.0;
        double fragIndex = 0.0;
        std::uint64_t inPlace = 0;
        std::uint64_t copied = 0;
        std::uint64_t spFail = 0;
    };
    std::vector<std::vector<std::string>> csv_rows;
    for (double pressure : pressures) {
        for (bool reservation : modes) {
            const auto cells = core::forEachSuiteWorkload(
                scale, [&](const auto &info) {
                    auto workload = info.instantiate();

                    core::RunOptions options;
                    options.maxRefs = scale.refs;
                    options.warmupRefs = scale.warmupRefs;
                    options.walk = scale.walk;
                    options.phys = base;
                    options.phys.fragPressure = pressure;
                    options.phys.reservation = reservation;

                    const auto result = core::runExperiment(
                        *workload,
                        core::PolicySpec::twoSizes(
                            core::paperPolicy(scale)),
                        tlb, options);

                    Cell cell;
                    cell.cpiTlb = result.cpiTlb;
                    cell.cpiPhys = result.cpiPhys;
                    cell.fragIndex = result.physFrag.fragIndex;
                    cell.inPlace = result.phys.promotionsInPlace;
                    cell.copied = result.phys.promotionsCopied;
                    cell.spFail = result.phys.superpageFailures;
                    return cell;
                });
            Cell sum;
            for (const Cell &cell : cells) {
                sum.cpiTlb += cell.cpiTlb;
                sum.cpiPhys += cell.cpiPhys;
                sum.fragIndex += cell.fragIndex;
                sum.inPlace += cell.inPlace;
                sum.copied += cell.copied;
                sum.spFail += cell.spFail;
            }
            const double n = static_cast<double>(cells.size());
            const std::string mode = reservation ? "on" : "off";
            table.addRow({formatFixed(pressure, 2), mode,
                          bench::cpi(sum.cpiTlb / n),
                          bench::cpi(sum.cpiPhys / n),
                          withCommas(sum.inPlace),
                          withCommas(sum.copied),
                          withCommas(sum.spFail),
                          formatFixed(sum.fragIndex / n, 3)});
            csv_rows.push_back({"p" + formatFixed(pressure, 2) + "_" +
                                    mode,
                                formatFixed(sum.cpiTlb / n, 6),
                                formatFixed(sum.cpiPhys / n, 6),
                                std::to_string(sum.inPlace),
                                std::to_string(sum.copied),
                                std::to_string(sum.spFail),
                                formatFixed(sum.fragIndex / n, 4)});
        }
    }
    bench::record("ablation_fragmentation",
                  {"cell", "mean_cpi_tlb", "mean_cpi_phys",
                   "promos_in_place", "promos_copied",
                   "superpage_failures", "mean_frag_index"},
                  csv_rows);
    table.print(std::cout);
    std::cout << "\nreservation promotes in place for free while "
                 "contiguity lasts; under pressure both modes fail "
                 "superpage allocation and copy-promotion also pays "
                 "copy cycles (CPI+copy)\n";
    return 0;
}
